#pragma once

#include <cstddef>

namespace stem::runtime {

/// True when this build can pin threads to CPUs (Linux). Everywhere else
/// the functions below are portable no-ops so callers never need #ifdefs.
bool affinity_supported() noexcept;

/// Number of logical CPUs this *process* may run on — affinity-mask aware
/// on Linux (a container restricted to 1 core reports 1 even on a 64-core
/// host), falling back to std::thread::hardware_concurrency elsewhere.
/// Never returns 0.
std::size_t logical_cpu_count() noexcept;

/// Pins the calling thread to the `slot`-th CPU of the process's allowed
/// set (wrapping modulo logical_cpu_count(), so callers can pass a shard
/// index directly). Returns false — without side effects — when pinning is
/// unsupported or the kernel rejects the mask.
bool pin_current_thread(std::size_t slot) noexcept;

}  // namespace stem::runtime
