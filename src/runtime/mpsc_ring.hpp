#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace stem::runtime {

/// Destructive-interference padding unit. hardware_destructive_interference_size
/// is not constexpr-usable on every libstdc++ configuration, so the usual
/// 64-byte x86/ARM line is hardcoded (128 on Apple/ARM big cores would only
/// cost a prefetch pair, not correctness).
inline constexpr std::size_t kCacheLine = 64;

/// Polite spin hint for consumer/producer spin phases.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Futex-shaped park/wake rendezvous (an *eventcount*): waiters register,
/// re-check their own predicate, then sleep on an epoch word; notifiers pay
/// one uncontended atomic load when nobody is parked. The seq_cst fences on
/// registration (waiter) and on the waiter-count probe (notifier) form the
/// classic Dekker pair: either the notifier observes the registered waiter
/// and bumps the epoch, or the waiter's post-registration predicate check
/// observes the notifier's state change — a wakeup is never lost.
///
/// Usage (waiter):                     Usage (notifier):
///   ticket = ec.prepare_wait();         <make predicate true>;
///   if (predicate) ec.cancel_wait();    ec.notify_all();
///   else           ec.wait(ticket);
///
/// The predicate state must itself be read with seq_cst (or via a seq_cst
/// RMW) between prepare_wait and wait for the Dekker argument to hold.
class EventCount {
 public:
  /// Registers the caller as a potential sleeper and returns the epoch
  /// ticket to sleep on. Must be paired with exactly one cancel_wait() or
  /// wait(). The full fence pairs with the one in notify_all(): whatever
  /// ordering the caller's predicate loads use, either this registration
  /// is visible to the notifier's waiter probe, or the notifier's
  /// predicate change is visible to the re-check that follows.
  std::uint32_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() noexcept { waiters_.fetch_sub(1, std::memory_order_relaxed); }

  /// Sleeps until the epoch moves past `ticket` (returns immediately when
  /// it already has). Spurious returns are fine — callers loop.
  void wait(std::uint32_t ticket) noexcept {
    epoch_.wait(ticket, std::memory_order_seq_cst);
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Wakes every registered sleeper. One fence + load when nobody waits.
  void notify_all() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    epoch_.notify_all();
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

/// Bounded lock-free multi-producer / single-consumer ring.
///
/// Protocol (Vyukov bounded-queue sequence scheme, restricted to one
/// consumer): every cell carries a sequence word. A producer claims the
/// tail slot with a CAS when the cell's sequence says "empty for this
/// lap" (seq == pos), writes the payload, and publishes with a release
/// store of seq = pos + 1. The consumer reads head's cell when
/// seq == pos + 1 and releases the slot for the next lap with
/// seq = pos + capacity. Claim order is FIFO, so the consumer observes
/// every producer's items in that producer's program order, with no loss
/// or duplication; a claimed-but-unpublished slot merely makes the
/// consumer wait (order is never given away).
///
/// Positions are deliberately 32-bit and all comparisons go through signed
/// wraparound differences, so the protocol survives index wrap at the
/// uint32 boundary by construction (capacity must stay below 2^30); the
/// `start_pos` constructor parameter exists so tests can begin a ring a
/// few slots before the wrap point and prove it.
///
/// Blocking semantics: push() parks on an internal EventCount while the
/// ring is full (bounded-queue backpressure); pop() spins briefly, then
/// parks while the ring is empty. close() wakes all sleepers: subsequent
/// pushes fail, pops drain the remaining items and then report exhaustion.
/// The close/drain handoff is exact: every push that returned true is
/// popped before pop() reports exhaustion, and a claim that races close()
/// and loses publishes a consumer-invisible tombstone instead of an item
/// (its push returns false). The drain therefore treats "cursors
/// disagree" — not "no visible item" — as the not-yet-drained condition,
/// so a claimed-but-unpublished cell can never be abandoned.
///
/// The consumer additionally gets peek access (front()/pop_front()) so a
/// caller can interleave this ring with other work sources and consume an
/// item only when an external admission rule allows it.
template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two (see capacity()).
  explicit MpscRing(std::size_t capacity, std::uint32_t start_pos = 0)
      : mask_(static_cast<std::uint32_t>(
            std::bit_ceil(capacity < 1 ? std::size_t{1} : capacity) - 1)),
        cells_(std::make_unique<Cell[]>(static_cast<std::size_t>(mask_) + 1)),
        tail_(start_pos),
        head_(start_pos) {
    // Seed by *position*, not array index: cell (pos & mask) must read
    // seq == pos for the first lap even when start_pos is not a multiple
    // of the capacity (the wrap tests start mid-lap on purpose).
    for (std::uint32_t i = 0; i <= mask_; ++i) {
      const std::uint32_t pos = start_pos + i;
      cells_[pos & mask_].seq.store(pos, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(mask_) + 1;
  }

  /// Approximate item count (exact at quiescence).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::uint32_t>(tail_.load(std::memory_order_acquire) -
                                      head_.load(std::memory_order_acquire));
  }

  /// Non-blocking push; false when the ring is full or closed. Any
  /// thread. Wakes a parked consumer on success, same as push().
  bool try_push(T&& value) {
    if (!try_push_ref(value)) return false;
    items_.notify_all();
    return true;
  }

  /// Blocking push: parks while full, returns false (value discarded) once
  /// the ring is closed. Any thread.
  bool push(T value) {
    for (;;) {
      if (closed_.load(std::memory_order_seq_cst)) return false;
      if (try_push_ref(value)) {
        items_.notify_all();
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) return false;
      const std::uint32_t ticket = space_.prepare_wait();
      if (try_push_ref(value)) {
        space_.cancel_wait();
        items_.notify_all();
        return true;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        space_.cancel_wait();
        return false;
      }
      space_.wait(ticket);
    }
  }

  /// Peeks the head item without consuming it; nullptr when empty.
  /// Consumer thread only. The pointer stays valid until pop_front().
  [[nodiscard]] T* front() noexcept {
    for (;;) {
      const std::uint32_t pos = head_.load(std::memory_order_relaxed);
      Cell& cell = cells_[pos & mask_];
      const std::uint32_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::int32_t>(seq - (pos + 1)) < 0) return nullptr;  // empty
      if (!cell.poisoned) return &cell.value;
      // Tombstone: a push claimed this slot, then observed close() and
      // published a poisoned cell instead of an item (see try_push_ref).
      // Never surfaced to callers — release the slot and look again.
      release_slot(pos, cell);
    }
  }

  /// Releases the head slot (must follow a non-null front()). Consumer
  /// thread only. Destroys the payload before handing the slot back so
  /// resources held by the item (e.g. refcounted batches) free promptly.
  void pop_front() noexcept {
    const std::uint32_t pos = head_.load(std::memory_order_relaxed);
    release_slot(pos, cells_[pos & mask_]);
  }

  /// Non-blocking pop; false when empty. Consumer thread only.
  bool try_pop(T& out) {
    T* item = front();
    if (item == nullptr) return false;
    out = std::move(*item);
    pop_front();
    return true;
  }

  /// Blocking pop with a spin-then-park consumer: false only once the ring
  /// is closed *and* fully drained. Consumer thread only.
  bool pop(T& out) {
    for (int spin = 0; spin < kSpinPops; ++spin) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) return pop_closed(out);
      cpu_relax();
    }
    for (;;) {
      const std::uint32_t ticket = items_.prepare_wait();
      if (try_pop(out)) {
        items_.cancel_wait();
        return true;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        items_.cancel_wait();
        return pop_closed(out);
      }
      items_.wait(ticket);
    }
  }

  /// Closes the ring: wakes every parked producer/consumer; push() fails
  /// from here on, pop() drains what remains. Idempotent, any thread.
  void close() noexcept {
    closed_.store(true, std::memory_order_seq_cst);
    items_.notify_all();
    space_.notify_all();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Wake hook for a consumer parked in pop() for reasons beyond new items
  /// (e.g. an external admission gate opened).
  void notify_consumer() noexcept { items_.notify_all(); }

 private:
  struct Cell {
    std::atomic<std::uint32_t> seq{0};
    T value{};
    /// Claim-raced-close tombstone: published instead of an item when the
    /// producer observed closed_ only after winning the tail CAS. Written
    /// before (and read after) seq's release/acquire hand-off.
    bool poisoned = false;
  };

  static constexpr int kSpinPops = 128;

  /// Hands the head slot back for the next lap (consumer thread only).
  void release_slot(std::uint32_t pos, Cell& cell) noexcept {
    cell.value = T{};
    cell.poisoned = false;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    space_.notify_all();
  }

  /// Closed-path drain (consumer thread only): "no visible item" is not
  /// "fully drained" — a producer may have won the tail CAS without yet
  /// publishing its cell, and returning false then would silently lose an
  /// admitted item. Only tail_ == head_ proves exhaustion; while the
  /// cursors disagree the outstanding claim is a few stores from
  /// visibility, so spin (publication never blocks). Soundness of the
  /// cursor check: the claim CAS, close()'s store, and this tail_ load
  /// are all seq_cst, so a claim this load cannot see was made after its
  /// producer could see closed_ — and such claims publish tombstones
  /// (never items) per try_push_ref's post-claim check.
  bool pop_closed(T& out) {
    for (;;) {
      if (try_pop(out)) return true;
      if (tail_.load(std::memory_order_seq_cst) ==
          head_.load(std::memory_order_relaxed)) {
        return false;
      }
      cpu_relax();
    }
  }

  bool try_push_ref(T& value) {
    std::uint32_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      // Fullness by cursor distance, not cell sequence: a capacity-1 ring
      // has identical "published" and "empty next lap" sequence values
      // (pos + 1 == pos + capacity), so the sequence alone cannot reject
      // the overwrite. head_ only grows, so a passing check stays valid
      // for the claimed pos, and the consumer's release-store of head_
      // orders the cell's slot release before this claim observes it.
      if (static_cast<std::uint32_t>(pos - head_.load(std::memory_order_acquire)) > mask_) {
        return false;  // full: all capacity() slots are outstanding
      }
      Cell& cell = cells_[pos & mask_];
      const std::uint32_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int32_t diff = static_cast<std::int32_t>(seq - pos);
      if (diff == 0) {
        // seq_cst success ordering: the claim must take a place in the
        // total order against close()'s store and the drain's cursor
        // check (pop_closed) — on x86 the lock-prefixed CAS is
        // sequentially consistent anyway, so the hot path pays nothing.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
          if (closed_.load(std::memory_order_seq_cst)) {
            // The claim raced close() and lost: the consumer's drain may
            // already have judged the ring exhausted up to this claim, so
            // an item published here could be abandoned. Publish a
            // tombstone instead (front() skips and releases it) and
            // report failure — the item is not admitted.
            cell.poisoned = true;
            cell.seq.store(pos + 1, std::memory_order_release);
            return false;
          }
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry against the new tail.
      } else if (diff < 0) {
        return false;  // full: the consumer has not released this lap's slot
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  const std::uint32_t mask_;
  const std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::uint32_t> tail_;  ///< producers' claim cursor
  alignas(kCacheLine) std::atomic<std::uint32_t> head_;  ///< consumer cursor
  alignas(kCacheLine) EventCount items_;                 ///< consumer parks when empty
  alignas(kCacheLine) EventCount space_;                 ///< producers park when full
  std::atomic<bool> closed_{false};
};

}  // namespace stem::runtime
