#include "runtime/checkpoint.hpp"

#include <charconv>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/serialize.hpp"

namespace stem::runtime {

namespace {

/// Integer-field reader over the frame: consumes "<int64>" plus exactly
/// one following separator (the emitter writes single spaces / newlines),
/// flagging failure instead of throwing.
struct FrameReader {
  std::string_view s;
  std::size_t pos = 0;
  bool failed = false;

  bool consume(std::string_view token) {
    if (failed || s.size() - pos < token.size() ||
        s.substr(pos, token.size()) != token) {
      failed = true;
      return false;
    }
    pos += token.size();
    return true;
  }

  std::int64_t read_int(char sep) {
    if (failed) return 0;
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(s.data() + pos, s.data() + s.size(), value);
    if (ec != std::errc{}) {
      failed = true;
      return 0;
    }
    pos = static_cast<std::size_t>(ptr - s.data());
    if (pos >= s.size() || s[pos] != sep) {
      failed = true;
      return 0;
    }
    ++pos;
    return value;
  }

  /// The rest of the current line (without the newline); consumes it.
  std::string_view read_line() {
    if (failed) return {};
    const std::size_t nl = s.find('\n', pos);
    if (nl == std::string_view::npos) {
      failed = true;
      return {};
    }
    const std::string_view line = s.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  }
};

}  // namespace

std::string encode_definition_state(const core::DefinitionState& state) {
  std::string out = "state " + std::to_string(state.seq) + ' ' +
                    std::to_string(state.next_prune_at.ticks()) + ' ' +
                    std::to_string(state.load_routed) + ' ' + std::to_string(state.load_tried) +
                    ' ' + std::to_string(state.buffers.size()) + '\n';
  for (const auto& slot : state.buffers) {
    out += "slot " + std::to_string(slot.size()) + '\n';
    for (const core::DefinitionState::BufferedEntity& b : slot) {
      out += std::to_string(b.stamp);
      out += ' ';
      out += core::encode(*b.entity);
      out += '\n';
    }
  }
  return out;
}

std::optional<core::DefinitionState> decode_definition_state(std::string_view frame,
                                                             core::EventDefinition def) {
  FrameReader r{frame};
  r.consume("state ");
  core::DefinitionState state{std::move(def)};
  state.seq = static_cast<std::uint64_t>(r.read_int(' '));
  state.next_prune_at = time_model::TimePoint(r.read_int(' '));
  state.load_routed = static_cast<std::uint64_t>(r.read_int(' '));
  state.load_tried = static_cast<std::uint64_t>(r.read_int(' '));
  const std::int64_t nslots = r.read_int('\n');
  if (r.failed || nslots < 0 ||
      static_cast<std::size_t>(nslots) > frame.size()) {  // count sanity: frame holds >=1 byte/slot
    return std::nullopt;
  }
  state.buffers.resize(static_cast<std::size_t>(nslots));
  for (auto& slot : state.buffers) {
    r.consume("slot ");
    const std::int64_t count = r.read_int('\n');
    if (r.failed || count < 0 || static_cast<std::size_t>(count) > frame.size()) {
      return std::nullopt;
    }
    slot.reserve(static_cast<std::size_t>(count));
    for (std::int64_t k = 0; k < count; ++k) {
      const std::int64_t stamp = r.read_int(' ');
      std::optional<core::Entity> entity = core::decode_entity(r.read_line());
      if (r.failed || stamp < 0 || !entity.has_value()) return std::nullopt;
      slot.push_back(core::DefinitionState::BufferedEntity{
          std::make_shared<const core::Entity>(std::move(*entity)),
          static_cast<std::uint64_t>(stamp)});
    }
  }
  if (r.failed || r.pos != frame.size()) return std::nullopt;
  return state;
}

}  // namespace stem::runtime
