#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace stem::runtime {

/// Checkpoint frame codec for one definition's dynamic engine state.
///
/// A shard checkpoint is a list of (global definition index, frame) pairs
/// taken at an epoch barrier in the shard's stamp-ordered inbox; recovery
/// rebuilds a fresh DetectionEngine by implanting the decoded states and
/// replaying the bounded post-checkpoint log. Only *dynamic* state is
/// framed — the definition spec itself is immutable after registration
/// and is re-supplied from the runtime's registration copy at decode
/// time, so condition trees never cross the wire.
///
/// Frame layout (line-oriented; entities ride the tagged JSON entity
/// frames of core/serialize.cpp):
///   state <seq> <next_prune_ticks> <load_routed> <load_tried> <nslots>
///   slot <count>                       (nslots times)
///   <stamp> <entity-json>              (count times per slot)
[[nodiscard]] std::string encode_definition_state(const core::DefinitionState& state);

/// Decodes a frame produced by encode_definition_state, adopting `def` as
/// the definition spec. Returns nullopt on any malformed input (truncated
/// frame, bad counts, undecodable entity) — never throws, never reads out
/// of bounds, so a corrupted checkpoint fails recovery loudly instead of
/// resurrecting a shard with silently wrong state.
[[nodiscard]] std::optional<core::DefinitionState> decode_definition_state(
    std::string_view frame, core::EventDefinition def);

}  // namespace stem::runtime
