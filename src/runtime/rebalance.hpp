#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stem::runtime {

/// Load attributed to one *definition group* — all definitions sharing an
/// event type id, the unit of migration (they share an instance sequence
/// counter, so splitting them would renumber the stream) — over the last
/// rebalance epoch. Cost units: arrivals routed to the group's
/// definitions + candidate bindings formed for them (epoch deltas of the
/// engines' per-definition counters) + entities currently buffered.
struct GroupLoad {
  std::uint32_t group = 0;  ///< runtime group index (ShardedEngineRuntime::group_of)
  std::uint32_t shard = 0;  ///< shard currently hosting the group
  std::uint64_t cost = 0;
  /// False while a previous migration of this group is still in flight
  /// (its implant has not completed); such groups must not be moved.
  bool movable = true;
};

/// One epoch's cluster view, handed to the policy. shard_load[s] is the
/// sum of the costs of the groups hosted on shard s this epoch.
struct RebalanceView {
  std::span<const std::uint64_t> shard_load;
  std::span<const GroupLoad> groups;
};

/// A policy's instruction: move `group` to shard `to`. The runtime
/// validates orders (unknown group, out-of-range shard, unmovable group,
/// or to == current host are ignored) before issuing the migration.
struct MigrationOrder {
  std::uint32_t group = 0;
  std::uint32_t to = 0;
};

/// Decides, once per epoch, which definition groups to migrate where.
/// Called under the runtime's ingest lock: implementations must not call
/// back into the runtime and should be quick.
class RebalancePolicy {
 public:
  virtual ~RebalancePolicy() = default;
  virtual void decide(const RebalanceView& view, std::vector<MigrationOrder>& out) = 0;
};

/// Default policy: for every shard whose epoch load exceeds
/// `overload_factor` x the mean shard load (hottest first), migrate the
/// highest-cost movable group hosted there to the least-loaded shard —
/// but only when that *strictly improves* the imbalance
/// (dest_load + cost < src_load), so a shard that is hot because of one
/// indivisible group is left alone instead of thrashing the group around.
/// At most one migration per hot shard per pass; loads are updated
/// in-place between picks so one pass stays consistent.
class SpilloverPolicy final : public RebalancePolicy {
 public:
  struct Options {
    double overload_factor = 1.5;  ///< "hot" threshold, in multiples of the mean
    std::size_t max_migrations = 0;  ///< cap per pass; 0 = one per hot shard
  };

  SpilloverPolicy() = default;
  explicit SpilloverPolicy(Options options) : options_(options) {}

  void decide(const RebalanceView& view, std::vector<MigrationOrder>& out) override;

 private:
  Options options_;
};

}  // namespace stem::runtime
