#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stem::runtime {

/// Load attributed to one *definition group* — all definitions sharing an
/// event type id, the unit of migration (they share an instance sequence
/// counter, so splitting them renumbers the stream unless the merge
/// restores global numbering — see OrderingTier) — over the last
/// rebalance epoch. Cost units: arrivals routed to the group's
/// definitions + candidate bindings formed for them (epoch deltas of the
/// engines' per-definition counters) + entities currently buffered. A
/// split group contributes two entries (one per sub-group/host shard).
struct GroupLoad {
  std::uint32_t group = 0;  ///< runtime group index (ShardedEngineRuntime::group_of)
  std::uint32_t shard = 0;  ///< shard currently hosting the group
  std::uint64_t cost = 0;
  /// False while a previous migration of this group is still in flight
  /// (its implant has not completed) and for already-split groups; such
  /// groups must not be moved.
  bool movable = true;
  /// True when the group can be split by sensor-key range (its definitions
  /// span >= 2 distinct sensor routing keys, it is not already split, and
  /// no migration is in flight): the policy may order a split instead of
  /// skipping an indivisibly hot shard.
  bool splittable = false;
};

/// One epoch's cluster view, handed to the policy. shard_load[s] is the
/// sum of the costs of the groups hosted on shard s this epoch.
struct RebalanceView {
  std::span<const std::uint64_t> shard_load;
  std::span<const GroupLoad> groups;
  /// Optional skip sink: when non-null, the policy increments it once per
  /// hot shard it must leave alone because no move strictly improves the
  /// imbalance and no hosted group is splittable (surfaced as
  /// RuntimeStats::spillover_skipped_indivisible).
  std::uint64_t* skipped_indivisible = nullptr;
};

/// A policy's instruction: move `group` to shard `to` — or, with `split`
/// set, split it by sensor-key range and send the high sub-group to `to`.
/// The runtime validates orders (unknown group, out-of-range shard,
/// unmovable group, to == current host, or an unsplittable group on a
/// split order are ignored) before issuing the migration.
struct MigrationOrder {
  std::uint32_t group = 0;
  std::uint32_t to = 0;
  bool split = false;
};

/// Decides, once per epoch, which definition groups to migrate where.
/// Called under the runtime's ingest lock: implementations must not call
/// back into the runtime and should be quick.
class RebalancePolicy {
 public:
  virtual ~RebalancePolicy() = default;
  virtual void decide(const RebalanceView& view, std::vector<MigrationOrder>& out) = 0;
};

/// Default policy: for every shard whose epoch load exceeds
/// `overload_factor` x the mean shard load (hottest first), migrate the
/// highest-cost movable group hosted there to the least-loaded shard —
/// but only when that *strictly improves* the imbalance
/// (dest_load + cost < src_load). A shard that is hot because of one
/// indivisible group is no longer silently left alone: if the culprit is
/// splittable, the policy orders a key-range split (planning on roughly
/// half the group's cost moving); only when it is not does the shard stay
/// put, counted through RebalanceView::skipped_indivisible.
/// At most one migration per hot shard per pass; loads are updated
/// in-place between picks so one pass stays consistent.
class SpilloverPolicy final : public RebalancePolicy {
 public:
  struct Options {
    double overload_factor = 1.5;  ///< "hot" threshold, in multiples of the mean
    std::size_t max_migrations = 0;  ///< cap per pass; 0 = one per hot shard
  };

  SpilloverPolicy() = default;
  explicit SpilloverPolicy(Options options) : options_(options) {}

  void decide(const RebalanceView& view, std::vector<MigrationOrder>& out) override;

 private:
  Options options_;
};

}  // namespace stem::runtime
