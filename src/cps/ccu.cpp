#include "cps/ccu.hpp"

namespace stem::cps {

ControlUnit::ControlUnit(net::Network& network, net::Broker& broker, Config config)
    : network_(network),
      broker_(broker),
      config_(std::move(config)),
      engine_(config_.id, core::Layer::kCyber, config_.position, config_.engine_options) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void ControlUnit::subscribe(const core::EventTypeId& event) {
  broker_.subscribe(event.value(), config_.id);
}

void ControlUnit::on_message(const net::Message& msg) {
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr) return;
  ++stats_.entities_received;
  network_.simulator().schedule_after(config_.proc_delay,
                                      [this, e = *entity] { process_entity(e); });
}

void ControlUnit::process_entity(const core::Entity& entity) {
  const time_model::TimePoint now = network_.simulator().now();
  // Same shared cascade machinery as the sink / flat baseline: the engine
  // re-observes derived instances itself when cascading is configured.
  auto instances = config_.cascade ? engine_.observe_cascading(entity, now)
                                   : engine_.observe(entity, now);
  for (auto& inst : instances) emit(std::move(inst));
}

void ControlUnit::emit(core::EventInstance inst) {
  ++stats_.cyber_events_emitted;
  for (const auto& cb : callbacks_) cb(inst);

  // Event-Action rules: decide actuation before the instance is moved out.
  std::vector<net::Command> commands;
  for (const ActionRule& rule : rules_) {
    if (rule.trigger != inst.key.event) continue;
    if (auto cmd = rule.make_command(inst)) commands.push_back(*std::move(cmd));
  }

  emitted_.push_back(inst);
  if (network_.linked(config_.id, broker_.id())) {
    broker_.publish(config_.id, core::Entity(std::move(inst)));
    for (auto& cmd : commands) {
      ++stats_.commands_issued;
      broker_.publish(config_.id, std::move(cmd));
    }
  }
}

}  // namespace stem::cps
