#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "net/broker.hpp"
#include "net/network.hpp"

namespace stem::cps {

/// An Event-Action rule (paper Sec. 1: "any CPS task can be represented as
/// an 'Event-Action' relation"). When the CCU emits a cyber event of type
/// `trigger`, `make_command` decides the actuation (or returns nullopt for
/// no-op); the command is published for the dispatch nodes.
struct ActionRule {
  core::EventTypeId trigger;
  std::function<std::optional<net::Command>(const core::EventInstance&)> make_command;
};

/// Per-CCU counters.
struct CcuStats {
  std::uint64_t entities_received = 0;
  std::uint64_t cyber_events_emitted = 0;
  std::uint64_t commands_issued = 0;
};

/// A CPS control unit (paper Sec. 3): the highest-level observer. It
/// subscribes to cyber-physical events from sinks and cyber events from
/// other CCUs, evaluates cyber-event conditions, publishes new cyber-event
/// instances, and issues actuator commands — Fig. 1's "Real-Time Context
/// Aware Logic" box.
class ControlUnit {
 public:
  struct Config {
    net::NodeId id;
    geom::Point position;
    time_model::Duration proc_delay = time_model::milliseconds(20);
    /// If true, multi-level cyber definitions resolve inside this CCU:
    /// emitted instances are re-observed through the engine's cascading
    /// path (depth-capped) before publication, instead of requiring a
    /// second CCU subscribed to the intermediate topic. Cross-CCU chains
    /// over the broker are unaffected.
    bool cascade = false;
    core::EngineOptions engine_options{};
  };

  ControlUnit(net::Network& network, net::Broker& broker, Config config);
  ControlUnit(const ControlUnit&) = delete;
  ControlUnit& operator=(const ControlUnit&) = delete;

  /// Subscribes this CCU to an event topic on the broker.
  void subscribe(const core::EventTypeId& event);
  /// Registers a cyber-event definition.
  void add_definition(core::EventDefinition def) { engine_.add_definition(std::move(def)); }
  /// Registers an Event-Action rule.
  void add_rule(ActionRule rule) { rules_.push_back(std::move(rule)); }

  /// Callback invoked for every emitted cyber event.
  void on_instance(std::function<void(const core::EventInstance&)> callback) {
    callbacks_.push_back(std::move(callback));
  }

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] const CcuStats& stats() const { return stats_; }
  [[nodiscard]] core::DetectionEngine& engine() { return engine_; }
  [[nodiscard]] const std::vector<core::EventInstance>& emitted() const { return emitted_; }

 private:
  void on_message(const net::Message& msg);
  void process_entity(const core::Entity& entity);
  void emit(core::EventInstance inst);

  net::Network& network_;
  net::Broker& broker_;
  Config config_;
  core::DetectionEngine engine_;
  std::vector<ActionRule> rules_;
  std::vector<std::function<void(const core::EventInstance&)>> callbacks_;
  std::vector<core::EventInstance> emitted_;
  CcuStats stats_;
};

}  // namespace stem::cps
