#include "eventlang/parser.hpp"

#include <optional>
#include <unordered_map>

#include "eventlang/lexer.hpp"

namespace stem::eventlang {

namespace {

using core::ConditionExpr;
using core::EventDefinition;
using core::SlotIndex;

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  std::vector<EventDefinition> parse() {
    std::vector<EventDefinition> out;
    while (!at(TokenKind::kEnd)) {
      out.push_back(parse_event());
    }
    return out;
  }

 private:
  // --- token plumbing -----------------------------------------------------
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  [[nodiscard]] bool at_ident(std::string_view word) const {
    return peek().kind == TokenKind::kIdent && peek().text == word;
  }
  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokenKind k, std::string_view what) {
    if (!at(k)) {
      throw ParseError("expected " + std::string(what) + ", got '" + peek().text + "'",
                       peek().line, peek().column);
    }
    return advance();
  }

  bool accept_ident(std::string_view word) {
    if (at_ident(word)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_ident(std::string_view word) {
    if (!accept_ident(word)) {
      throw ParseError("expected '" + std::string(word) + "', got '" + peek().text + "'",
                       peek().line, peek().column);
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }

  // --- helpers --------------------------------------------------------------
  double parse_number() { return expect(TokenKind::kNumber, "number").number; }

  time_model::Duration parse_duration() {
    const Token& num = expect(TokenKind::kNumber, "duration value");
    const Token& unit = expect(TokenKind::kIdent, "duration unit (us/ms/s/m)");
    const auto ticks = [&](double scale) {
      return time_model::Duration(static_cast<time_model::Tick>(num.number * scale));
    };
    if (unit.text == "us") return ticks(1);
    if (unit.text == "ms") return ticks(1e3);
    if (unit.text == "s") return ticks(1e6);
    if (unit.text == "m") return ticks(6e7);
    throw ParseError("unknown duration unit '" + unit.text + "'", unit.line, unit.column);
  }

  core::RelationalOp parse_relop() {
    switch (peek().kind) {
      case TokenKind::kLt: advance(); return core::RelationalOp::kLt;
      case TokenKind::kLe: advance(); return core::RelationalOp::kLe;
      case TokenKind::kGt: advance(); return core::RelationalOp::kGt;
      case TokenKind::kGe: advance(); return core::RelationalOp::kGe;
      case TokenKind::kEq: advance(); return core::RelationalOp::kEq;
      case TokenKind::kNe: advance(); return core::RelationalOp::kNe;
      default: fail("expected relational operator");
    }
  }

  SlotIndex slot_of(const Token& tok) const {
    const auto it = slot_names_.find(tok.text);
    if (it == slot_names_.end()) {
      throw ParseError("unknown slot '" + tok.text + "'", tok.line, tok.column);
    }
    return it->second;
  }

  std::vector<SlotIndex> parse_slots() {
    std::vector<SlotIndex> out;
    out.push_back(slot_of(expect(TokenKind::kIdent, "slot name")));
    while (at(TokenKind::kComma)) {
      advance();
      out.push_back(slot_of(expect(TokenKind::kIdent, "slot name")));
    }
    return out;
  }

  /// Optional "<agg>:" prefix inside a call; `lookup` maps names.
  template <typename Agg, typename Lookup>
  std::optional<Agg> try_agg_prefix(Lookup lookup) {
    if (peek().kind == TokenKind::kIdent && tokens_[pos_ + 1].kind == TokenKind::kColon) {
      const auto agg = lookup(peek().text);
      if (!agg.has_value()) {
        fail("unknown aggregate '" + peek().text + "'");
      }
      advance();  // agg
      advance();  // colon
      return agg;
    }
    return std::nullopt;
  }

  // --- event ---------------------------------------------------------------
  EventDefinition parse_event() {
    expect_ident("event");
    const Token& name = expect(TokenKind::kIdent, "event name");
    expect(TokenKind::kLBrace, "'{'");

    slot_names_.clear();
    std::vector<core::SlotSpec> slots;
    std::optional<ConditionExpr> condition;
    time_model::Duration window = time_model::seconds(60);
    core::SynthesisSpec synthesis;
    core::ConsumptionMode consumption = core::ConsumptionMode::kConsume;

    while (!at(TokenKind::kRBrace)) {
      if (accept_ident("window")) {
        expect(TokenKind::kColon, "':'");
        window = parse_duration();
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("slot")) {
        const Token& slot_name = expect(TokenKind::kIdent, "slot name");
        if (slot_names_.contains(slot_name.text)) {
          throw ParseError("duplicate slot '" + slot_name.text + "'", slot_name.line,
                           slot_name.column);
        }
        expect(TokenKind::kAssign, "'='");
        core::SlotFilter filter = parse_source();
        if (accept_ident("from")) {
          filter.producer = core::ObserverId(expect(TokenKind::kIdent, "producer id").text);
        }
        expect(TokenKind::kSemi, "';'");
        slot_names_.emplace(slot_name.text, static_cast<SlotIndex>(slots.size()));
        slots.push_back(core::SlotSpec{slot_name.text, std::move(filter)});
      } else if (accept_ident("when")) {
        condition = parse_expr();
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("emit")) {
        parse_emit(synthesis);
      } else if (accept_ident("consume")) {
        consumption = core::ConsumptionMode::kConsume;
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("reuse")) {
        consumption = core::ConsumptionMode::kUnrestricted;
        expect(TokenKind::kSemi, "';'");
      } else {
        fail("expected clause (window/slot/when/emit/consume/reuse), got '" + peek().text + "'");
      }
    }
    expect(TokenKind::kRBrace, "'}'");

    if (slots.empty()) {
      throw ParseError("event '" + name.text + "' declares no slots", name.line, name.column);
    }
    if (!condition.has_value()) {
      throw ParseError("event '" + name.text + "' has no when-clause", name.line, name.column);
    }
    return EventDefinition{core::EventTypeId(name.text), std::move(slots),
                           *std::move(condition),      window,
                           std::move(synthesis),       consumption};
  }

  core::SlotFilter parse_source() {
    if (accept_ident("obs")) {
      expect(TokenKind::kLParen, "'('");
      core::SlotFilter f =
          core::SlotFilter::observation(core::SensorId(expect(TokenKind::kIdent, "sensor id").text));
      expect(TokenKind::kRParen, "')'");
      return f;
    }
    if (accept_ident("event")) {
      expect(TokenKind::kLParen, "'('");
      core::SlotFilter f = core::SlotFilter::instance_of(
          core::EventTypeId(expect(TokenKind::kIdent, "event type").text));
      expect(TokenKind::kRParen, "')'");
      return f;
    }
    if (accept_ident("any")) return core::SlotFilter::any();
    fail("expected slot source (obs/event/any)");
  }

  // --- condition expression --------------------------------------------------
  ConditionExpr parse_expr() {
    ConditionExpr lhs = parse_and();
    if (!at_ident("or")) return lhs;
    std::vector<ConditionExpr> children;
    children.push_back(std::move(lhs));
    while (accept_ident("or")) children.push_back(parse_and());
    return core::c_or(std::move(children));
  }

  ConditionExpr parse_and() {
    ConditionExpr lhs = parse_unary();
    if (!at_ident("and")) return lhs;
    std::vector<ConditionExpr> children;
    children.push_back(std::move(lhs));
    while (accept_ident("and")) children.push_back(parse_unary());
    return core::c_and(std::move(children));
  }

  ConditionExpr parse_unary() {
    if (accept_ident("not")) return core::c_not(parse_unary());
    if (at(TokenKind::kLParen)) {
      advance();
      ConditionExpr inner = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    return parse_predicate();
  }

  ConditionExpr parse_predicate() {
    if (at_ident("time")) return parse_time_pred();
    if (at_ident("loc")) return parse_loc_pred();
    if (at_ident("distance")) return parse_dist_pred();
    if (at_ident("rho")) return parse_rho_pred();
    if (peek().kind == TokenKind::kIdent &&
        core::value_aggregate_from_string(peek().text).has_value()) {
      return parse_attr_pred();
    }
    fail("expected predicate (time/loc/distance/rho/<aggregate>), got '" + peek().text + "'");
  }

  core::TimeExpr parse_time_expr() {
    expect_ident("time");
    expect(TokenKind::kLParen, "'('");
    core::TimeExpr e;
    if (const auto agg = try_agg_prefix<time_model::TimeAggregate>(
            [](std::string_view s) { return time_model::time_aggregate_from_string(s); })) {
      e.aggregate = *agg;
    }
    e.slots = parse_slots();
    expect(TokenKind::kRParen, "')'");
    if (at(TokenKind::kPlus)) {
      advance();
      e.offset = parse_duration();
    }
    return e;
  }

  ConditionExpr parse_time_pred() {
    core::TemporalCondition cond;
    cond.lhs = parse_time_expr();
    const Token& op_tok = expect(TokenKind::kIdent, "temporal operator");
    const auto op = time_model::temporal_op_from_string(op_tok.text);
    if (!op.has_value()) {
      throw ParseError("unknown temporal operator '" + op_tok.text + "'", op_tok.line,
                       op_tok.column);
    }
    cond.op = *op;
    if (at_ident("time")) {
      cond.rhs = parse_time_expr();
    } else if (accept_ident("at")) {
      expect(TokenKind::kLParen, "'('");
      const time_model::Duration d = parse_duration();
      expect(TokenKind::kRParen, "')'");
      cond.rhs = time_model::OccurrenceTime(time_model::TimePoint::epoch() + d);
    } else if (accept_ident("interval")) {
      expect(TokenKind::kLParen, "'('");
      const time_model::Duration a = parse_duration();
      expect(TokenKind::kComma, "','");
      const time_model::Duration b = parse_duration();
      expect(TokenKind::kRParen, "')'");
      cond.rhs = time_model::OccurrenceTime(time_model::TimeInterval(
          time_model::TimePoint::epoch() + a, time_model::TimePoint::epoch() + b));
    } else {
      fail("expected time(...) / at(...) / interval(...)");
    }
    return ConditionExpr(std::move(cond));
  }

  core::LocationExpr parse_loc_expr() {
    expect_ident("loc");
    expect(TokenKind::kLParen, "'('");
    core::LocationExpr e;
    if (const auto agg = try_agg_prefix<geom::SpatialAggregate>(
            [](std::string_view s) { return geom::spatial_aggregate_from_string(s); })) {
      e.aggregate = *agg;
    }
    e.slots = parse_slots();
    expect(TokenKind::kRParen, "')'");
    return e;
  }

  geom::Location parse_loc_const() {
    if (accept_ident("rect")) {
      expect(TokenKind::kLParen, "'('");
      const double x0 = parse_number();
      expect(TokenKind::kComma, "','");
      const double y0 = parse_number();
      expect(TokenKind::kComma, "','");
      const double x1 = parse_number();
      expect(TokenKind::kComma, "','");
      const double y1 = parse_number();
      expect(TokenKind::kRParen, "')'");
      return geom::Location(geom::Polygon::rectangle({x0, y0}, {x1, y1}));
    }
    if (accept_ident("point")) {
      expect(TokenKind::kLParen, "'('");
      const double x = parse_number();
      expect(TokenKind::kComma, "','");
      const double y = parse_number();
      expect(TokenKind::kRParen, "')'");
      return geom::Location(geom::Point{x, y});
    }
    if (accept_ident("circle")) {
      expect(TokenKind::kLParen, "'('");
      const double x = parse_number();
      expect(TokenKind::kComma, "','");
      const double y = parse_number();
      expect(TokenKind::kComma, "','");
      const double r = parse_number();
      expect(TokenKind::kRParen, "')'");
      return geom::Location(geom::Polygon::disk({x, y}, r, 24));
    }
    fail("expected location constant (rect/point/circle)");
  }

  ConditionExpr parse_loc_pred() {
    core::SpatialCondition cond;
    cond.lhs = parse_loc_expr();
    const Token& op_tok = expect(TokenKind::kIdent, "spatial operator");
    const auto op = geom::spatial_op_from_string(op_tok.text);
    if (!op.has_value()) {
      throw ParseError("unknown spatial operator '" + op_tok.text + "'", op_tok.line,
                       op_tok.column);
    }
    cond.op = *op;
    if (at_ident("loc")) {
      cond.rhs = parse_loc_expr();
    } else {
      cond.rhs = parse_loc_const();
    }
    return ConditionExpr(std::move(cond));
  }

  ConditionExpr parse_dist_pred() {
    expect_ident("distance");
    expect(TokenKind::kLParen, "'('");
    core::DistanceCondition cond;
    cond.lhs = core::LocationExpr{geom::SpatialAggregate::kHull,
                                  {slot_of(expect(TokenKind::kIdent, "slot name"))}};
    expect(TokenKind::kComma, "','");
    if (peek().kind == TokenKind::kIdent && slot_names_.contains(peek().text)) {
      cond.to = core::LocationExpr{geom::SpatialAggregate::kHull, {slot_of(advance())}};
    } else {
      cond.to = parse_loc_const();
    }
    expect(TokenKind::kRParen, "')'");
    cond.op = parse_relop();
    cond.constant = parse_number();
    return ConditionExpr(std::move(cond));
  }

  ConditionExpr parse_attr_pred() {
    const Token& agg_tok = advance();
    const auto agg = core::value_aggregate_from_string(agg_tok.text);
    expect(TokenKind::kLParen, "'('");
    core::AttributeCondition cond;
    cond.aggregate = *agg;
    cond.attribute = expect(TokenKind::kIdent, "attribute name").text;
    expect_ident("of");
    cond.slots = parse_slots();
    expect(TokenKind::kRParen, "')'");
    cond.op = parse_relop();
    cond.constant = parse_number();
    return ConditionExpr(std::move(cond));
  }

  ConditionExpr parse_rho_pred() {
    expect_ident("rho");
    expect(TokenKind::kLParen, "'('");
    core::ConfidenceCondition cond;
    if (const auto agg = try_agg_prefix<core::ValueAggregate>(
            [](std::string_view s) { return core::value_aggregate_from_string(s); })) {
      cond.aggregate = *agg;
    }
    cond.slots = parse_slots();
    expect(TokenKind::kRParen, "')'");
    cond.op = parse_relop();
    cond.constant = parse_number();
    return ConditionExpr(std::move(cond));
  }

  // --- emit clause -------------------------------------------------------------
  void parse_emit(core::SynthesisSpec& synthesis) {
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      if (accept_ident("time")) {
        expect(TokenKind::kColon, "':'");
        const Token& agg = expect(TokenKind::kIdent, "time aggregate");
        const auto parsed = time_model::time_aggregate_from_string(agg.text);
        if (!parsed.has_value()) {
          throw ParseError("unknown time aggregate '" + agg.text + "'", agg.line, agg.column);
        }
        synthesis.time = *parsed;
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("location")) {
        expect(TokenKind::kColon, "':'");
        const Token& agg = expect(TokenKind::kIdent, "location aggregate");
        const auto parsed = geom::spatial_aggregate_from_string(agg.text);
        if (!parsed.has_value()) {
          throw ParseError("unknown location aggregate '" + agg.text + "'", agg.line, agg.column);
        }
        synthesis.location = *parsed;
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("confidence")) {
        expect(TokenKind::kColon, "':'");
        const Token& policy = expect(TokenKind::kIdent, "confidence policy");
        if (policy.text == "min") {
          synthesis.confidence = core::ConfidencePolicy::kMin;
        } else if (policy.text == "product") {
          synthesis.confidence = core::ConfidencePolicy::kProduct;
        } else if (policy.text == "mean") {
          synthesis.confidence = core::ConfidencePolicy::kMean;
        } else {
          throw ParseError("unknown confidence policy '" + policy.text + "'", policy.line,
                           policy.column);
        }
        if (at(TokenKind::kStar)) {
          advance();
          synthesis.observer_confidence = parse_number();
        }
        expect(TokenKind::kSemi, "';'");
      } else if (accept_ident("attr")) {
        core::AttributeRule rule;
        rule.output_name = expect(TokenKind::kIdent, "output attribute").text;
        expect(TokenKind::kAssign, "'='");
        const Token& agg_tok = expect(TokenKind::kIdent, "aggregate");
        const auto agg = core::value_aggregate_from_string(agg_tok.text);
        if (!agg.has_value()) {
          throw ParseError("unknown aggregate '" + agg_tok.text + "'", agg_tok.line,
                           agg_tok.column);
        }
        rule.aggregate = *agg;
        expect(TokenKind::kLParen, "'('");
        rule.input_attribute = expect(TokenKind::kIdent, "input attribute").text;
        expect_ident("of");
        rule.slots = parse_slots();
        expect(TokenKind::kRParen, "')'");
        expect(TokenKind::kSemi, "';'");
        synthesis.attributes.push_back(std::move(rule));
      } else {
        fail("expected emit item (time/location/confidence/attr), got '" + peek().text + "'");
      }
    }
    expect(TokenKind::kRBrace, "'}'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, SlotIndex> slot_names_;
};

}  // namespace

std::vector<core::EventDefinition> parse_spec(std::string_view source) {
  return Parser(source).parse();
}

core::EventDefinition parse_event(std::string_view source) {
  auto defs = parse_spec(source);
  if (defs.size() != 1) {
    throw ParseError("expected exactly one event definition, found " +
                         std::to_string(defs.size()),
                     1, 1);
  }
  return std::move(defs.front());
}

}  // namespace stem::eventlang
