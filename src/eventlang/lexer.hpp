#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stem::eventlang {

/// Token kinds of the event specification language.
enum class TokenKind {
  kIdent,    ///< identifiers and keywords
  kNumber,   ///< numeric literal (integer or decimal)
  kLBrace,   ///< {
  kRBrace,   ///< }
  kLParen,   ///< (
  kRParen,   ///< )
  kComma,    ///< ,
  kSemi,     ///< ;
  kColon,    ///< :
  kAssign,   ///< =
  kPlus,     ///< +
  kStar,     ///< *
  kLt,       ///< <
  kLe,       ///< <=
  kGt,       ///< >
  kGe,       ///< >=
  kEq,       ///< ==
  kNe,       ///< !=
  kEnd,      ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< identifier text / operator spelling
  double number = 0.0; ///< value for kNumber
  int line = 1;
  int column = 1;
};

/// Error with source position, thrown by lexer, parser, and compiler.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column)
      : std::runtime_error("line " + std::to_string(line) + ":" + std::to_string(column) + ": " +
                           message),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes a full specification. `#` starts a comment to end-of-line.
/// Throws ParseError on unknown characters or malformed numbers.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

[[nodiscard]] std::string_view to_string(TokenKind kind);

}  // namespace stem::eventlang
