#include "eventlang/lexer.hpp"

#include <cctype>
#include <charconv>

namespace stem::eventlang {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1, column = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto push = [&](TokenKind kind, std::string text, double number = 0.0) {
    out.push_back(Token{kind, std::move(text), number, line, column});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++column;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) != 0 || src[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, std::string(src.substr(start, i - start)));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      const std::size_t start = i;
      if (src[i] == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(src[i])) != 0 || src[i] == '.')) {
        ++i;
      }
      const std::string text(src.substr(start, i - start));
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw ParseError("malformed number '" + text + "'", line, column);
      }
      push(TokenKind::kNumber, text, value);
      column += static_cast<int>(i - start);
      continue;
    }

    const auto two = [&](char second) {
      return i + 1 < n && src[i + 1] == second;
    };
    switch (c) {
      case '{': push(TokenKind::kLBrace, "{"); break;
      case '}': push(TokenKind::kRBrace, "}"); break;
      case '(': push(TokenKind::kLParen, "("); break;
      case ')': push(TokenKind::kRParen, ")"); break;
      case ',': push(TokenKind::kComma, ","); break;
      case ';': push(TokenKind::kSemi, ";"); break;
      case ':': push(TokenKind::kColon, ":"); break;
      case '+': push(TokenKind::kPlus, "+"); break;
      case '*': push(TokenKind::kStar, "*"); break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, "<=");
          ++i;
          ++column;
        } else {
          push(TokenKind::kLt, "<");
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, ">=");
          ++i;
          ++column;
        } else {
          push(TokenKind::kGt, ">");
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEq, "==");
          ++i;
          ++column;
        } else {
          push(TokenKind::kAssign, "=");
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, "!=");
          ++i;
          ++column;
        } else {
          throw ParseError("unexpected '!'", line, column);
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line, column);
    }
    ++i;
    ++column;
  }
  out.push_back(Token{TokenKind::kEnd, "", 0.0, line, column});
  return out;
}

}  // namespace stem::eventlang
