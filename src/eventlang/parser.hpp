#pragma once

#include <string_view>
#include <vector>

#include "core/event_def.hpp"

namespace stem::eventlang {

/// Compiles an event specification into event definitions ready to be
/// registered on a DetectionEngine. Throws ParseError (with line/column)
/// on lexical, syntactic, or semantic errors (unknown slot, bad operator,
/// missing when-clause...).
///
/// Grammar (EBNF, '#' comments allowed):
///
///   spec        = { event } ;
///   event       = "event" IDENT "{" { clause } "}" ;
///   clause      = "window" ":" duration ";"
///               | "slot" IDENT "=" source [ "from" IDENT ] ";"
///               | "when" expr ";"
///               | "emit" "{" { emit-item } "}"
///               | ( "consume" | "reuse" ) ";" ;
///   source      = "obs" "(" IDENT ")" | "event" "(" IDENT ")" | "any" ;
///   expr        = and-expr { "or" and-expr } ;
///   and-expr    = unary { "and" unary } ;
///   unary       = "not" unary | "(" expr ")" | predicate ;
///   predicate   = time-pred | loc-pred | dist-pred | attr-pred | rho-pred ;
///   time-pred   = time-expr TIMEOP ( time-expr | "at" "(" duration ")"
///               | "interval" "(" duration "," duration ")" ) ;
///   time-expr   = "time" "(" [ TIMEAGG ":" ] slots ")" [ "+" duration ] ;
///   loc-pred    = loc-expr SPACEOP ( loc-expr | loc-const ) ;
///   loc-expr    = "loc" "(" [ SPACEAGG ":" ] slots ")" ;
///   loc-const   = "rect" "(" num "," num "," num "," num ")"
///               | "point" "(" num "," num ")"
///               | "circle" "(" num "," num "," num ")" ;
///   dist-pred   = "distance" "(" IDENT "," ( IDENT | loc-const ) ")" RELOP num ;
///   attr-pred   = VALAGG "(" IDENT "of" slots ")" RELOP num ;
///   rho-pred    = "rho" "(" [ VALAGG ":" ] slots ")" RELOP num ;
///   emit-item   = "time" ":" TIMEAGG ";"
///               | "location" ":" SPACEAGG ";"
///               | "confidence" ":" ("min"|"product"|"mean") [ "*" num ] ";"
///               | "attr" IDENT "=" VALAGG "(" IDENT "of" slots ")" ";" ;
///   slots       = IDENT { "," IDENT } ;
///   duration    = num ( "us" | "ms" | "s" | "m" ) ;
///
///   TIMEOP  = before|after|meets|metby|overlaps|overlappedby|during|
///             contains|starts|begin|finishes|end|equals|intersects|within
///   SPACEOP = equal|inside|outside|contains|joint|disjoint
///   RELOP   = < | <= | > | >= | == | !=
///   TIMEAGG = earliest|latest|span|mean ; SPACEAGG = centroid|hull|unionbox
///   VALAGG  = avg|average|max|min|sum|add|count
[[nodiscard]] std::vector<core::EventDefinition> parse_spec(std::string_view source);

/// Parses a specification expected to define exactly one event.
/// Throws ParseError if it defines zero or several.
[[nodiscard]] core::EventDefinition parse_event(std::string_view source);

}  // namespace stem::eventlang
