#include "eventlang/printer.hpp"

#include <sstream>

namespace stem::eventlang {

namespace {

using core::ConditionExpr;
using core::EventDefinition;

std::string fmt_number(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

/// Durations print in the largest unit that divides them exactly.
std::string fmt_duration(time_model::Duration d) {
  const auto t = d.ticks();
  if (t % 60'000'000 == 0) return std::to_string(t / 60'000'000) + " m";
  if (t % 1'000'000 == 0) return std::to_string(t / 1'000'000) + " s";
  if (t % 1'000 == 0) return std::to_string(t / 1'000) + " ms";
  return std::to_string(t) + " us";
}

std::string slot_name(const EventDefinition& def, core::SlotIndex i) {
  return i < def.slots.size() ? def.slots[i].name : ("$" + std::to_string(i));
}

std::string fmt_slots(const EventDefinition& def, const std::vector<core::SlotIndex>& slots) {
  std::string out;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) out += ", ";
    out += slot_name(def, slots[i]);
  }
  return out;
}

std::string fmt_time_expr(const EventDefinition& def, const core::TimeExpr& e) {
  std::string out = "time(";
  if (e.aggregate != time_model::TimeAggregate::kSpan) {
    out += std::string(time_model::to_string(e.aggregate)) + ": ";
  }
  out += fmt_slots(def, e.slots) + ")";
  if (e.offset != time_model::Duration::zero()) out += " + " + fmt_duration(e.offset);
  return out;
}

std::string fmt_loc_expr(const EventDefinition& def, const core::LocationExpr& e) {
  std::string out = "loc(";
  if (e.aggregate != geom::SpatialAggregate::kHull) {
    out += std::string(geom::to_string(e.aggregate)) + ": ";
  }
  return out + fmt_slots(def, e.slots) + ")";
}

std::string fmt_loc_const(const geom::Location& loc) {
  if (loc.is_point()) {
    return "point(" + fmt_number(loc.as_point().x) + ", " + fmt_number(loc.as_point().y) + ")";
  }
  // Fields print as their bounding rect (exact for rect-shaped fields).
  const geom::BoundingBox box = loc.bbox();
  return "rect(" + fmt_number(box.lo().x) + ", " + fmt_number(box.lo().y) + ", " +
         fmt_number(box.hi().x) + ", " + fmt_number(box.hi().y) + ")";
}

std::string fmt_occurrence_const(const time_model::OccurrenceTime& t) {
  if (t.is_punctual()) {
    return "at(" + std::to_string(t.as_point().ticks()) + " us)";
  }
  return "interval(" + std::to_string(t.begin().ticks()) + " us, " +
         std::to_string(t.end().ticks()) + " us)";
}

void print_expr(std::ostream& os, const ConditionExpr& expr, const EventDefinition& def,
                bool parenthesize) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, core::AndNode> || std::is_same_v<T, core::OrNode>) {
          const char* joiner = std::is_same_v<T, core::AndNode> ? " and " : " or ";
          if (parenthesize) os << "(";
          for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i != 0) os << joiner;
            print_expr(os, node.children[i], def, true);
          }
          if (parenthesize) os << ")";
        } else if constexpr (std::is_same_v<T, core::NotNode>) {
          os << "not ";
          print_expr(os, node.child.front(), def, true);
        } else if constexpr (std::is_same_v<T, core::AttributeCondition>) {
          os << to_string(node.aggregate) << "(" << node.attribute << " of "
             << fmt_slots(def, node.slots) << ") " << node.op << " " << fmt_number(node.constant);
        } else if constexpr (std::is_same_v<T, core::TemporalCondition>) {
          os << fmt_time_expr(def, node.lhs) << " " << time_model::to_string(node.op) << " ";
          if (const auto* c = std::get_if<time_model::OccurrenceTime>(&node.rhs)) {
            os << fmt_occurrence_const(*c);
          } else {
            os << fmt_time_expr(def, std::get<core::TimeExpr>(node.rhs));
          }
        } else if constexpr (std::is_same_v<T, core::SpatialCondition>) {
          os << fmt_loc_expr(def, node.lhs) << " " << geom::to_string(node.op) << " ";
          if (const auto* c = std::get_if<geom::Location>(&node.rhs)) {
            os << fmt_loc_const(*c);
          } else {
            os << fmt_loc_expr(def, std::get<core::LocationExpr>(node.rhs));
          }
        } else if constexpr (std::is_same_v<T, core::DistanceCondition>) {
          os << "distance(" << fmt_slots(def, node.lhs.slots) << ", ";
          if (const auto* c = std::get_if<geom::Location>(&node.to)) {
            os << fmt_loc_const(*c);
          } else {
            os << fmt_slots(def, std::get<core::LocationExpr>(node.to).slots);
          }
          os << ") " << node.op << " " << fmt_number(node.constant);
        } else if constexpr (std::is_same_v<T, core::ConfidenceCondition>) {
          os << "rho(";
          if (node.aggregate != core::ValueAggregate::kMin) {
            os << to_string(node.aggregate) << ": ";
          }
          os << fmt_slots(def, node.slots) << ") " << node.op << " "
             << fmt_number(node.constant);
        }
      },
      expr.rep());
}

std::string fmt_filter(const core::SlotFilter& filter) {
  std::string out;
  if (filter.sensor.has_value()) {
    out = "obs(" + filter.sensor->value() + ")";
  } else if (filter.event_type.has_value()) {
    out = "event(" + filter.event_type->value() + ")";
  } else {
    out = "any";
  }
  if (filter.producer.has_value()) out += " from " + filter.producer->value();
  return out;
}

}  // namespace

std::string print_condition(const ConditionExpr& expr, const EventDefinition& def) {
  std::ostringstream os;
  print_expr(os, expr, def, false);
  return os.str();
}

std::string print_event(const EventDefinition& def) {
  std::ostringstream os;
  os << "event " << def.id.value() << " {\n";
  os << "  window: " << fmt_duration(def.window) << ";\n";
  for (const core::SlotSpec& slot : def.slots) {
    os << "  slot " << slot.name << " = " << fmt_filter(slot.filter) << ";\n";
  }
  os << "  when " << print_condition(def.condition, def) << ";\n";

  const core::SynthesisSpec& syn = def.synthesis;
  const core::SynthesisSpec defaults;
  const bool custom_emit = syn.time != defaults.time || syn.location != defaults.location ||
                           syn.confidence != defaults.confidence ||
                           syn.observer_confidence != defaults.observer_confidence ||
                           !syn.attributes.empty();
  if (custom_emit) {
    os << "  emit {\n";
    if (syn.time != defaults.time) {
      os << "    time: " << time_model::to_string(syn.time) << ";\n";
    }
    if (syn.location != defaults.location) {
      os << "    location: " << geom::to_string(syn.location) << ";\n";
    }
    if (syn.confidence != defaults.confidence ||
        syn.observer_confidence != defaults.observer_confidence) {
      os << "    confidence: ";
      switch (syn.confidence) {
        case core::ConfidencePolicy::kMin: os << "min"; break;
        case core::ConfidencePolicy::kProduct: os << "product"; break;
        case core::ConfidencePolicy::kMean: os << "mean"; break;
      }
      if (syn.observer_confidence != 1.0) os << " * " << fmt_number(syn.observer_confidence);
      os << ";\n";
    }
    for (const core::AttributeRule& rule : syn.attributes) {
      os << "    attr " << rule.output_name << " = " << to_string(rule.aggregate) << "("
         << rule.input_attribute << " of " << fmt_slots(def, rule.slots) << ");\n";
    }
    os << "  }\n";
  }
  os << "  " << (def.consumption == core::ConsumptionMode::kConsume ? "consume" : "reuse")
     << ";\n}\n";
  return os.str();
}

}  // namespace stem::eventlang
