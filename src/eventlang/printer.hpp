#pragma once

#include <string>

#include "core/event_def.hpp"

namespace stem::eventlang {

/// Renders an event definition back into the specification language.
///
/// The output is re-parseable: for any definition `d` produced by the
/// parser, `parse_event(print_event(d))` yields a definition with the same
/// printed form (full round trip). This is used to persist definitions and
/// to display compiled rules in tooling.
///
/// Limitation: temporal/spatial *constants* print in canonical form
/// (`at(... us)`, `interval(... us, ... us)`, vertex-list fields print as
/// the bounding `rect` when axis-aligned, otherwise they cannot be exactly
/// represented and a best-effort `rect` of the bbox is emitted).
[[nodiscard]] std::string print_event(const core::EventDefinition& def);

/// Renders just a condition expression (the `when` clause body).
[[nodiscard]] std::string print_condition(const core::ConditionExpr& expr,
                                          const core::EventDefinition& def);

}  // namespace stem::eventlang
