#include "geom/clip.hpp"

#include <stdexcept>
#include <vector>

namespace stem::geom {

bool is_convex(const Polygon& poly) {
  const auto& vs = poly.vertices();
  const std::size_t n = vs.size();
  int sign = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double o = orientation(vs[i], vs[(i + 1) % n], vs[(i + 2) % n]);
    if (std::abs(o) <= kEpsilon) continue;  // collinear triple
    const int s = o > 0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

namespace {

/// Signed distance of p from the (CCW) clip edge a->b: >=0 means inside.
double edge_side(Point p, Point a, Point b) { return orientation(a, b, p); }

Point line_intersection(Point p1, Point p2, Point a, Point b) {
  const double d1 = edge_side(p1, a, b);
  const double d2 = edge_side(p2, a, b);
  const double t = d1 / (d1 - d2);
  return p1 + (p2 - p1) * t;
}

}  // namespace

std::optional<Polygon> clip_convex(const Polygon& subject, const Polygon& convex_clip) {
  if (!subject.bbox().intersects(convex_clip.bbox())) return std::nullopt;

  // Ensure CCW clip winding so "inside" is consistently the left side.
  std::vector<Point> clip = convex_clip.vertices();
  if (convex_clip.signed_area() < 0) {
    std::vector<Point> reversed(clip.rbegin(), clip.rend());
    clip = std::move(reversed);
  }

  std::vector<Point> output = subject.vertices();
  const std::size_t m = clip.size();
  for (std::size_t e = 0; e < m && !output.empty(); ++e) {
    const Point a = clip[e];
    const Point b = clip[(e + 1) % m];
    std::vector<Point> input = std::move(output);
    output.clear();
    const std::size_t n = input.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point cur = input[i];
      const Point next = input[(i + 1) % n];
      const bool cur_in = edge_side(cur, a, b) >= -kEpsilon;
      const bool next_in = edge_side(next, a, b) >= -kEpsilon;
      if (cur_in) {
        output.push_back(cur);
        if (!next_in) output.push_back(line_intersection(cur, next, a, b));
      } else if (next_in) {
        output.push_back(line_intersection(cur, next, a, b));
      }
    }
  }
  if (output.size() < 3) return std::nullopt;
  const Polygon result(std::move(output));
  if (result.area() <= kEpsilon) return std::nullopt;
  return result;
}

double intersection_area(const Polygon& a, const Polygon& b) {
  const Polygon* subject = &a;
  const Polygon* clip = &b;
  if (!is_convex(*clip)) {
    std::swap(subject, clip);
    if (!is_convex(*clip)) {
      throw std::invalid_argument("intersection_area: neither polygon is convex");
    }
  }
  const auto clipped = clip_convex(*subject, *clip);
  return clipped.has_value() ? clipped->area() : 0.0;
}

double iou(const Polygon& a, const Polygon& b) {
  const double inter = intersection_area(a, b);
  const double uni = a.area() + b.area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace stem::geom
