#pragma once

#include <algorithm>
#include <iosfwd>
#include <limits>

#include "geom/point.hpp"

namespace stem::geom {

/// Axis-aligned bounding box. Empty boxes (default-constructed) behave as
/// the identity for `expand` and intersect nothing.
class BoundingBox {
 public:
  constexpr BoundingBox() = default;
  constexpr BoundingBox(Point lo, Point hi) : lo_(lo), hi_(hi) {}
  constexpr explicit BoundingBox(Point p) : lo_(p), hi_(p) {}

  [[nodiscard]] constexpr bool empty() const { return hi_.x < lo_.x || hi_.y < lo_.y; }
  [[nodiscard]] constexpr Point lo() const { return lo_; }
  [[nodiscard]] constexpr Point hi() const { return hi_; }
  [[nodiscard]] constexpr Point center() const { return {(lo_.x + hi_.x) / 2, (lo_.y + hi_.y) / 2}; }
  [[nodiscard]] constexpr double width() const { return empty() ? 0.0 : hi_.x - lo_.x; }
  [[nodiscard]] constexpr double height() const { return empty() ? 0.0 : hi_.y - lo_.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  /// Half-perimeter; the R-tree split heuristic minimizes this.
  [[nodiscard]] constexpr double margin() const { return width() + height(); }

  [[nodiscard]] constexpr bool contains(Point p) const {
    return lo_.x <= p.x && p.x <= hi_.x && lo_.y <= p.y && p.y <= hi_.y;
  }
  [[nodiscard]] constexpr bool contains(const BoundingBox& b) const {
    return !b.empty() && lo_.x <= b.lo_.x && b.hi_.x <= hi_.x && lo_.y <= b.lo_.y && b.hi_.y <= hi_.y;
  }
  [[nodiscard]] constexpr bool intersects(const BoundingBox& b) const {
    if (empty() || b.empty()) return false;
    return lo_.x <= b.hi_.x && b.lo_.x <= hi_.x && lo_.y <= b.hi_.y && b.lo_.y <= hi_.y;
  }

  constexpr void expand(Point p) {
    if (empty()) {
      lo_ = hi_ = p;
      return;
    }
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi_.x = std::max(hi_.x, p.x);
    hi_.y = std::max(hi_.y, p.y);
  }
  constexpr void expand(const BoundingBox& b) {
    if (b.empty()) return;
    expand(b.lo_);
    expand(b.hi_);
  }

  [[nodiscard]] constexpr BoundingBox united(const BoundingBox& b) const {
    BoundingBox r = *this;
    r.expand(b);
    return r;
  }

  /// Area increase needed to also cover `b` (the R-tree insertion cost).
  [[nodiscard]] constexpr double enlargement(const BoundingBox& b) const {
    return united(b).area() - area();
  }

  [[nodiscard]] constexpr BoundingBox inflated(double r) const {
    if (empty()) return *this;
    return BoundingBox({lo_.x - r, lo_.y - r}, {hi_.x + r, hi_.y + r});
  }

  friend constexpr bool operator==(const BoundingBox&, const BoundingBox&) = default;

 private:
  Point lo_{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()};
  Point hi_{std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()};
};

std::ostream& operator<<(std::ostream& os, const BoundingBox& b);

}  // namespace stem::geom
