#pragma once

#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "geom/polygon.hpp"

namespace stem::geom {

/// Convex hull of a point set (Andrew's monotone chain, O(n log n)).
/// Returns the hull vertices in counter-clockwise order with no
/// collinear interior points. Returns nullopt when fewer than 3
/// non-collinear points exist (no polygon can be formed).
///
/// Used by sink nodes to estimate a *field event* footprint from the point
/// locations of contributing sensor events (paper Sec. 4.2: "a field
/// occurrence location is made of at least 2 or more point events").
[[nodiscard]] std::optional<Polygon> convex_hull(std::vector<Point> points);

}  // namespace stem::geom
