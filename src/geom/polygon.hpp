#pragma once

#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace stem::geom {

/// A location field (paper: "polytope") represented as a simple polygon.
///
/// Vertices are stored in order (either winding); the closing edge from the
/// last vertex back to the first is implicit. Degenerate polygons with
/// fewer than 3 vertices are rejected at construction.
class Polygon {
 public:
  /// Throws std::invalid_argument if fewer than 3 vertices are given.
  explicit Polygon(std::vector<Point> vertices);
  Polygon(std::initializer_list<Point> vertices);

  [[nodiscard]] const std::vector<Point>& vertices() const { return vertices_; }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }

  /// Signed area: positive for counter-clockwise winding.
  [[nodiscard]] double signed_area() const;
  [[nodiscard]] double area() const;
  [[nodiscard]] Point centroid() const;
  [[nodiscard]] const BoundingBox& bbox() const { return bbox_; }
  [[nodiscard]] double perimeter() const;

  /// Point-in-polygon by ray casting; points on the boundary count as
  /// inside (closed region semantics, matching the closed time intervals).
  [[nodiscard]] bool contains(Point p) const;

  /// True iff `p` lies on the boundary within tolerance.
  [[nodiscard]] bool on_boundary(Point p, double eps = kEpsilon) const;

  /// True iff `other` lies entirely within this polygon (all vertices
  /// inside and no edge crossings).
  [[nodiscard]] bool contains(const Polygon& other) const;

  /// True iff the two closed regions share at least one point — the
  /// paper's "Joint" spatial relation for field events.
  [[nodiscard]] bool intersects(const Polygon& other) const;

  /// Euclidean distance from `p` to the closed region (0 if inside).
  [[nodiscard]] double distance_to(Point p) const;

  /// Polygon translated by the vector `d`.
  [[nodiscard]] Polygon translated(Point d) const;

  /// Axis-aligned rectangle convenience factory.
  [[nodiscard]] static Polygon rectangle(Point lo, Point hi);
  /// Regular n-gon approximation of a disk centered at `c` with radius `r`.
  /// Throws std::invalid_argument if r <= 0 or n < 3.
  [[nodiscard]] static Polygon disk(Point c, double r, int n = 16);

  friend bool operator==(const Polygon& a, const Polygon& b) { return a.vertices_ == b.vertices_; }

 private:
  std::vector<Point> vertices_;
  BoundingBox bbox_;
};

/// True iff segments [a,b] and [c,d] share at least one point.
[[nodiscard]] bool segments_intersect(Point a, Point b, Point c, Point d);

/// Distance from point p to segment [a,b].
[[nodiscard]] double point_segment_distance(Point p, Point a, Point b);

std::ostream& operator<<(std::ostream& os, const Polygon& poly);

}  // namespace stem::geom
