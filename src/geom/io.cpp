#include <ostream>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace stem::geom {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const BoundingBox& b) {
  if (b.empty()) return os << "bbox{empty}";
  return os << "bbox{" << b.lo() << ".." << b.hi() << "}";
}

}  // namespace stem::geom
