#include "geom/polygon.hpp"

#include <cmath>
#include <numbers>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace stem::geom {

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon: needs at least 3 vertices");
  }
  for (const Point& v : vertices_) bbox_.expand(v);
}

Polygon::Polygon(std::initializer_list<Point> vertices)
    : Polygon(std::vector<Point>(vertices)) {}

double Polygon::signed_area() const {
  double acc = 0.0;
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    acc += cross(a, b);
  }
  return acc / 2.0;
}

double Polygon::area() const { return std::abs(signed_area()); }

Point Polygon::centroid() const {
  // Standard area-weighted centroid; falls back to the vertex mean for
  // (numerically) zero-area polygons.
  const double a = signed_area();
  if (std::abs(a) < kEpsilon) {
    Point mean{0, 0};
    for (const Point& v : vertices_) mean = mean + v;
    return mean / static_cast<double>(vertices_.size());
  }
  Point c{0, 0};
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    const double w = cross(p, q);
    c.x += (p.x + q.x) * w;
    c.y += (p.y + q.y) * w;
  }
  return c / (6.0 * a);
}

double Polygon::perimeter() const {
  double acc = 0.0;
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    acc += distance(vertices_[i], vertices_[(i + 1) % n]);
  }
  return acc;
}

bool Polygon::contains(Point p) const {
  if (!bbox_.contains(p)) return false;
  if (on_boundary(p)) return true;
  // Ray cast toward +x, counting proper edge crossings.
  bool inside = false;
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const bool a_above = a.y > p.y;
    const bool b_above = b.y > p.y;
    if (a_above != b_above) {
      const double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (x_cross > p.x) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::on_boundary(Point p, double eps) const {
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    if (point_segment_distance(p, vertices_[i], vertices_[(i + 1) % n]) <= eps) return true;
  }
  return false;
}

bool Polygon::contains(const Polygon& other) const {
  if (!bbox_.contains(other.bbox())) return false;
  for (const Point& v : other.vertices_) {
    if (!contains(v)) return false;
  }
  // All vertices inside; reject if any edges cross (possible for
  // non-convex containers).
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    for (std::size_t j = 0, m = other.vertices_.size(); j < m; ++j) {
      const Point& c = other.vertices_[j];
      const Point& d = other.vertices_[(j + 1) % m];
      // Shared boundary points are fine under closed-region semantics; a
      // proper crossing is not. Detect proper crossings only.
      const double o1 = orientation(a, b, c);
      const double o2 = orientation(a, b, d);
      const double o3 = orientation(c, d, a);
      const double o4 = orientation(c, d, b);
      if (((o1 > kEpsilon && o2 < -kEpsilon) || (o1 < -kEpsilon && o2 > kEpsilon)) &&
          ((o3 > kEpsilon && o4 < -kEpsilon) || (o3 < -kEpsilon && o4 > kEpsilon))) {
        return false;
      }
    }
  }
  return true;
}

bool Polygon::intersects(const Polygon& other) const {
  if (!bbox_.intersects(other.bbox())) return false;
  // Any edge pair intersecting => joint.
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    for (std::size_t j = 0, m = other.vertices_.size(); j < m; ++j) {
      if (segments_intersect(a, b, other.vertices_[j], other.vertices_[(j + 1) % m])) return true;
    }
  }
  // No edge crossings: one may contain the other entirely.
  return contains(other.vertices_.front()) || other.contains(vertices_.front());
}

double Polygon::distance_to(Point p) const {
  if (contains(p)) return 0.0;
  double best = std::numeric_limits<double>::max();
  for (std::size_t i = 0, n = vertices_.size(); i < n; ++i) {
    best = std::min(best, point_segment_distance(p, vertices_[i], vertices_[(i + 1) % n]));
  }
  return best;
}

Polygon Polygon::translated(Point d) const {
  std::vector<Point> vs;
  vs.reserve(vertices_.size());
  for (const Point& v : vertices_) vs.push_back(v + d);
  return Polygon(std::move(vs));
}

Polygon Polygon::rectangle(Point lo, Point hi) {
  return Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

Polygon Polygon::disk(Point c, double r, int n) {
  if (r <= 0.0) throw std::invalid_argument("Polygon::disk: radius must be positive");
  if (n < 3) throw std::invalid_argument("Polygon::disk: need at least 3 vertices");
  std::vector<Point> vs;
  vs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    vs.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return Polygon(std::move(vs));
}

namespace {
bool on_segment_collinear(Point p, Point a, Point b) {
  return std::min(a.x, b.x) - kEpsilon <= p.x && p.x <= std::max(a.x, b.x) + kEpsilon &&
         std::min(a.y, b.y) - kEpsilon <= p.y && p.y <= std::max(a.y, b.y) + kEpsilon;
}
}  // namespace

bool segments_intersect(Point a, Point b, Point c, Point d) {
  const double o1 = orientation(a, b, c);
  const double o2 = orientation(a, b, d);
  const double o3 = orientation(c, d, a);
  const double o4 = orientation(c, d, b);

  if (((o1 > kEpsilon && o2 < -kEpsilon) || (o1 < -kEpsilon && o2 > kEpsilon)) &&
      ((o3 > kEpsilon && o4 < -kEpsilon) || (o3 < -kEpsilon && o4 > kEpsilon))) {
    return true;
  }
  if (std::abs(o1) <= kEpsilon && on_segment_collinear(c, a, b)) return true;
  if (std::abs(o2) <= kEpsilon && on_segment_collinear(d, a, b)) return true;
  if (std::abs(o3) <= kEpsilon && on_segment_collinear(a, c, d)) return true;
  if (std::abs(o4) <= kEpsilon && on_segment_collinear(b, c, d)) return true;
  return false;
}

double point_segment_distance(Point p, Point a, Point b) {
  const Point ab = b - a;
  const double len2 = norm2(ab);
  if (len2 <= kEpsilon * kEpsilon) return distance(p, a);
  double t = dot(p - a, ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return distance(p, a + ab * t);
}

std::ostream& operator<<(std::ostream& os, const Polygon& poly) {
  os << "poly{";
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (i != 0) os << ", ";
    os << poly.vertices()[i];
  }
  return os << "}";
}

}  // namespace stem::geom
