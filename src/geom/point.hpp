#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

/// 2-D spatial model (paper Section 4, "Spatial Model"): a standard
/// 2-dimensional Cartesian coordinate system in which an ordered pair
/// (x, y) is a location point and a polytope is a location field.
namespace stem::geom {

/// Geometric comparison tolerance. Coordinates are in meters by system
/// convention; 1e-9 m is far below any sensor's resolution.
inline constexpr double kEpsilon = 1e-9;

/// A location point (x, y) in the global Cartesian frame.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Point operator*(double k, Point a) { return {a.x * k, a.y * k}; }
  friend constexpr Point operator/(Point a, double k) { return {a.x / k, a.y / k}; }

  friend constexpr bool operator==(Point a, Point b) = default;
};

/// Exact-tolerance equality: component-wise within kEpsilon.
[[nodiscard]] constexpr bool almost_equal(Point a, Point b, double eps = kEpsilon) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return (dx < 0 ? -dx : dx) <= eps && (dy < 0 ? -dy : dy) <= eps;
}

[[nodiscard]] inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
/// z-component of the 3-D cross product; >0 means b is CCW of a.
[[nodiscard]] inline double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }
[[nodiscard]] inline double norm2(Point a) { return dot(a, a); }
[[nodiscard]] inline double norm(Point a) { return std::sqrt(norm2(a)); }
[[nodiscard]] inline double distance(Point a, Point b) { return norm(a - b); }
[[nodiscard]] inline double distance2(Point a, Point b) { return norm2(a - b); }

/// Orientation of the ordered triple (a, b, c):
/// >0 counter-clockwise, <0 clockwise, 0 collinear (within tolerance).
[[nodiscard]] inline double orientation(Point a, Point b, Point c) {
  return cross(b - a, c - a);
}

std::ostream& operator<<(std::ostream& os, Point p);

}  // namespace stem::geom
