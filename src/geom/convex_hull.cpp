#include "geom/convex_hull.hpp"

#include <algorithm>

namespace stem::geom {

std::optional<Polygon> convex_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](Point a, Point b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](Point a, Point b) { return almost_equal(a, b); }),
               points.end());
  const std::size_t n = points.size();
  if (n < 3) return std::nullopt;

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && orientation(hull[k - 2], hull[k - 1], points[i]) <= kEpsilon) --k;
    hull[k++] = points[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper hull
    while (k >= t && orientation(hull[k - 2], hull[k - 1], points[i]) <= kEpsilon) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  if (hull.size() < 3) return std::nullopt;
  return Polygon(std::move(hull));
}

}  // namespace stem::geom
