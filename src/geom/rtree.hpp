#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "geom/bbox.hpp"

namespace stem::geom {

/// R-tree with quadratic split (Guttman 1984).
///
/// Supports insertion, incremental erasure, and box-intersection queries;
/// sufficient for the field-event join workloads of experiment E4 and for
/// backing the detection engine's mutating slot buffers. `T` is the
/// payload (typically an instance id) and must be copyable and
/// equality-comparable.
template <typename T, std::size_t MaxEntries = 8>
class RTree {
  static_assert(MaxEntries >= 4, "RTree: MaxEntries must be at least 4");
  static constexpr std::size_t kMinEntries = MaxEntries / 2;

 public:
  RTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  void insert(const BoundingBox& box, T value) {
    if (box.empty()) throw std::invalid_argument("RTree::insert: empty box");
    Leaf leaf{box, std::move(value)};
    Node* target = choose_leaf(root_.get(), box);
    target->leaves.push_back(std::move(leaf));
    target->box.expand(box);
    adjust_upward(target);
    ++size_;
  }

  /// Removes the entry previously inserted with exactly this (box, value)
  /// pair. Returns false if no such entry is present. Empty nodes are
  /// pruned and ancestor boxes tightened; underfull nodes are kept as-is
  /// (no reinsertion pass), which is the right trade-off for buffer-backed
  /// churn where erasures are soon followed by fresh insertions.
  bool erase(const BoundingBox& box, const T& value) {
    Node* leaf = nullptr;
    std::size_t pos = 0;
    find_entry(root_.get(), box, value, leaf, pos);
    if (leaf == nullptr) return false;
    leaf->leaves.erase(leaf->leaves.begin() + static_cast<std::ptrdiff_t>(pos));
    condense(leaf);
    --size_;
    return true;
  }

  /// Collects payloads whose box intersects `query`.
  [[nodiscard]] std::vector<T> query(const BoundingBox& query) const {
    std::vector<T> out;
    if (!query.empty()) search(root_.get(), query, out);
    return out;
  }

  /// Visits payloads whose box intersects `query`; `fn(const T&)`.
  template <typename Fn>
  void visit(const BoundingBox& query, Fn&& fn) const {
    if (!query.empty()) visit_impl(root_.get(), query, fn);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Height of the tree (1 for a single leaf node); exposed for tests.
  [[nodiscard]] std::size_t height() const {
    std::size_t h = 1;
    for (const Node* n = root_.get(); !n->leaf; n = n->children.front().get()) ++h;
    return h;
  }

  void clear() {
    root_ = std::make_unique<Node>(/*leaf=*/true);
    size_ = 0;
  }

 private:
  struct Leaf {
    BoundingBox box;
    T value;
  };

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    BoundingBox box;
    Node* parent = nullptr;
    std::vector<Leaf> leaves;                    // if leaf
    std::vector<std::unique_ptr<Node>> children;  // if internal

    [[nodiscard]] std::size_t fill() const { return leaf ? leaves.size() : children.size(); }
  };

  static void search(const Node* n, const BoundingBox& q, std::vector<T>& out) {
    if (!n->box.intersects(q)) return;
    if (n->leaf) {
      for (const Leaf& l : n->leaves) {
        if (l.box.intersects(q)) out.push_back(l.value);
      }
      return;
    }
    for (const auto& c : n->children) search(c.get(), q, out);
  }

  template <typename Fn>
  static void visit_impl(const Node* n, const BoundingBox& q, Fn& fn) {
    if (!n->box.intersects(q)) return;
    if (n->leaf) {
      for (const Leaf& l : n->leaves) {
        if (l.box.intersects(q)) fn(l.value);
      }
      return;
    }
    for (const auto& c : n->children) visit_impl(c.get(), q, fn);
  }

  static void find_entry(Node* n, const BoundingBox& box, const T& value, Node*& out,
                         std::size_t& pos) {
    if (out != nullptr || !n->box.intersects(box)) return;
    if (n->leaf) {
      for (std::size_t i = 0; i < n->leaves.size(); ++i) {
        if (n->leaves[i].box == box && n->leaves[i].value == value) {
          out = n;
          pos = i;
          return;
        }
      }
      return;
    }
    for (const auto& c : n->children) {
      find_entry(c.get(), box, value, out, pos);
      if (out != nullptr) return;
    }
  }

  /// After an erase: drop nodes that became empty and tighten the boxes of
  /// every surviving ancestor, then collapse single-child root chains.
  void condense(Node* n) {
    while (n != nullptr) {
      Node* parent = n->parent;
      if (parent != nullptr && n->fill() == 0) {
        auto& siblings = parent->children;
        for (auto it = siblings.begin(); it != siblings.end(); ++it) {
          if (it->get() == n) {
            siblings.erase(it);
            break;
          }
        }
      } else {
        recompute_box(n);
      }
      n = parent;
    }
    while (!root_->leaf && root_->children.size() == 1) {
      std::unique_ptr<Node> child = std::move(root_->children.front());
      child->parent = nullptr;
      root_ = std::move(child);
    }
    if (!root_->leaf && root_->children.empty()) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
    }
  }

  static Node* choose_leaf(Node* n, const BoundingBox& box) {
    while (!n->leaf) {
      Node* best = nullptr;
      double best_enlarge = 0.0, best_area = 0.0;
      for (const auto& c : n->children) {
        const double enlarge = c->box.enlargement(box);
        const double area = c->box.area();
        if (best == nullptr || enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = c.get();
          best_enlarge = enlarge;
          best_area = area;
        }
      }
      n = best;
    }
    return n;
  }

  void adjust_upward(Node* n) {
    while (n != nullptr) {
      if (n->fill() > MaxEntries) {
        split(n);
        // split() may replace the root; restart box fixes from parent.
      }
      recompute_box(n);
      n = n->parent;
    }
  }

  static void recompute_box(Node* n) {
    n->box = BoundingBox();
    if (n->leaf) {
      for (const Leaf& l : n->leaves) n->box.expand(l.box);
    } else {
      for (const auto& c : n->children) n->box.expand(c->box);
    }
  }

  // Quadratic split: pick the pair of entries that wastes the most area as
  // seeds, then assign remaining entries to the group needing least
  // enlargement, respecting the minimum fill.
  void split(Node* n) {
    auto sibling = std::make_unique<Node>(n->leaf);
    Node* sib = sibling.get();

    if (n->leaf) {
      split_entries(n->leaves, sib->leaves, [](const Leaf& l) { return l.box; });
    } else {
      split_entries(n->children, sib->children,
                    [](const std::unique_ptr<Node>& c) { return c->box; });
      for (auto& c : sib->children) c->parent = sib;
    }
    recompute_box(n);
    recompute_box(sib);

    if (n->parent == nullptr) {
      // Grow a new root.
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      Node* nr = new_root.get();
      sibling->parent = nr;
      std::unique_ptr<Node> old_root = std::move(root_);
      old_root->parent = nr;
      nr->children.push_back(std::move(old_root));
      nr->children.push_back(std::move(sibling));
      recompute_box(nr);
      root_ = std::move(new_root);
    } else {
      sibling->parent = n->parent;
      n->parent->children.push_back(std::move(sibling));
    }
  }

  template <typename Entry, typename BoxOf>
  static void split_entries(std::vector<Entry>& a, std::vector<Entry>& b, BoxOf box_of) {
    std::vector<Entry> all = std::move(a);
    a.clear();

    // Seed selection: most wasteful pair.
    std::size_t s1 = 0, s2 = 1;
    double worst = -1.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        const double waste =
            box_of(all[i]).united(box_of(all[j])).area() - box_of(all[i]).area() - box_of(all[j]).area();
        if (waste > worst) {
          worst = waste;
          s1 = i;
          s2 = j;
        }
      }
    }

    BoundingBox box_a = box_of(all[s1]);
    BoundingBox box_b = box_of(all[s2]);
    a.push_back(std::move(all[s1]));
    b.push_back(std::move(all[s2]));

    for (std::size_t i = 0; i < all.size(); ++i) {
      if (i == s1 || i == s2) continue;
      Entry& e = all[i];
      const std::size_t remaining = all.size() - i;
      // Force assignment if one group must take all the rest to reach min fill.
      if (a.size() + remaining <= kMinEntries + (i < s2 ? 1u : 0u) || b.size() >= MaxEntries) {
        box_a.expand(box_of(e));
        a.push_back(std::move(e));
        continue;
      }
      if (b.size() + remaining <= kMinEntries + (i < s2 ? 1u : 0u) || a.size() >= MaxEntries) {
        box_b.expand(box_of(e));
        b.push_back(std::move(e));
        continue;
      }
      const double grow_a = box_a.enlargement(box_of(e));
      const double grow_b = box_b.enlargement(box_of(e));
      if (grow_a < grow_b || (grow_a == grow_b && a.size() <= b.size())) {
        box_a.expand(box_of(e));
        a.push_back(std::move(e));
      } else {
        box_b.expand(box_of(e));
        b.push_back(std::move(e));
      }
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace stem::geom
