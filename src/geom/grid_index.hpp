#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "geom/bbox.hpp"

namespace stem::geom {

/// Uniform-grid spatial index over bounding boxes.
///
/// Entries are bucketed into fixed-size cells; a query visits only cells
/// the query box touches. Best when entry footprints are small relative to
/// the cell size (sensor events, mote positions). `T` must be copyable and
/// equality-comparable (typically an id).
///
/// Supports incremental `erase` so the index can back a mutating buffer
/// (the detection engine's slot buffers insert on arrival and erase on
/// eviction/consumption): erased entry records go on a free list and are
/// reused by later insertions, so long-lived churn does not grow storage.
template <typename T>
class GridIndex {
 public:
  /// `cell` is the side length of a grid cell in world units.
  explicit GridIndex(double cell) : cell_(cell) {
    if (!(cell > 0.0)) throw std::invalid_argument("GridIndex: cell must be positive");
  }

  void insert(const BoundingBox& box, T value) {
    if (box.empty()) throw std::invalid_argument("GridIndex::insert: empty box");
    std::size_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      entries_[idx] = Entry{box, std::move(value)};
    } else {
      entries_.push_back(Entry{box, std::move(value)});
      idx = entries_.size() - 1;
    }
    for_each_cell(box, [&](std::int64_t key) { cells_[key].push_back(idx); });
    ++size_;
  }

  /// Removes the entry previously inserted with exactly this (box, value)
  /// pair. Returns false if no such entry is indexed.
  bool erase(const BoundingBox& box, const T& value) {
    if (box.empty() || size_ == 0) return false;
    // Every cell the box touches holds the entry; locate it via the first.
    const auto first = cells_.find(first_cell_key(box));
    if (first == cells_.end()) return false;
    std::size_t idx = kNotFound;
    for (const std::size_t i : first->second) {
      if (entries_[i].box == box && entries_[i].value == value) {
        idx = i;
        break;
      }
    }
    if (idx == kNotFound) return false;
    for_each_cell(box, [&](std::int64_t key) {
      const auto it = cells_.find(key);
      if (it == cells_.end()) return;
      auto& v = it->second;
      const auto pos = std::find(v.begin(), v.end(), idx);
      if (pos != v.end()) {
        *pos = v.back();
        v.pop_back();
      }
      if (v.empty()) cells_.erase(it);
    });
    free_.push_back(idx);
    --size_;
    return true;
  }

  /// Collects values whose stored box intersects `query` (candidates are
  /// exact at the box level; callers refine with precise geometry).
  [[nodiscard]] std::vector<T> query(const BoundingBox& query) const {
    std::vector<T> out;
    visit(query, [&out](const T& v) { out.push_back(v); });
    return out;
  }

  /// Visits values whose stored box intersects `query`; `fn(const T&)`.
  /// Allocation-free apart from the lazily grown dedup scratch.
  template <typename Fn>
  void visit(const BoundingBox& query, Fn&& fn) const {
    if (query.empty() || size_ == 0) return;
    ++generation_;
    for_each_cell(query, [&](std::int64_t key) {
      auto it = cells_.find(key);
      if (it == cells_.end()) return;
      for (std::size_t idx : it->second) {
        if (seen_.size() <= idx) seen_.resize(entries_.size(), 0);
        if (seen_[idx] == generation_) continue;
        seen_[idx] = generation_;
        if (entries_[idx].box.intersects(query)) fn(entries_[idx].value);
      }
    });
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] double cell_size() const { return cell_; }

  void clear() {
    entries_.clear();
    cells_.clear();
    free_.clear();
    seen_.clear();
    generation_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  struct Entry {
    BoundingBox box;
    T value;
  };

  [[nodiscard]] std::int64_t cell_key(std::int64_t cx, std::int64_t cy) const {
    // Pack two 32-bit cell coordinates into one key.
    return (cx << 32) ^ (cy & 0xffffffff);
  }

  [[nodiscard]] std::int64_t first_cell_key(const BoundingBox& box) const {
    return cell_key(static_cast<std::int64_t>(std::floor(box.lo().x / cell_)),
                    static_cast<std::int64_t>(std::floor(box.lo().y / cell_)));
  }

  template <typename Fn>
  void for_each_cell(const BoundingBox& box, Fn&& fn) const {
    const auto cx0 = static_cast<std::int64_t>(std::floor(box.lo().x / cell_));
    const auto cy0 = static_cast<std::int64_t>(std::floor(box.lo().y / cell_));
    const auto cx1 = static_cast<std::int64_t>(std::floor(box.hi().x / cell_));
    const auto cy1 = static_cast<std::int64_t>(std::floor(box.hi().y / cell_));
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        fn(cell_key(cx, cy));
      }
    }
  }

  double cell_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> free_;  // erased entry records, reused on insert
  std::unordered_map<std::int64_t, std::vector<std::size_t>> cells_;
  std::size_t size_ = 0;  // live entries (entries_ may hold freed records)
  // Query-time dedup scratch (an entry can live in many cells).
  mutable std::vector<std::uint32_t> seen_;
  mutable std::uint32_t generation_ = 0;
};

}  // namespace stem::geom
