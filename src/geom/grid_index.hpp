#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "geom/bbox.hpp"

namespace stem::geom {

/// Uniform-grid spatial index over bounding boxes.
///
/// Entries are bucketed into fixed-size cells; a query visits only cells
/// the query box touches. Best when entry footprints are small relative to
/// the cell size (sensor events, mote positions). `T` must be copyable and
/// equality-comparable (typically an id).
template <typename T>
class GridIndex {
 public:
  /// `cell` is the side length of a grid cell in world units.
  explicit GridIndex(double cell) : cell_(cell) {
    if (!(cell > 0.0)) throw std::invalid_argument("GridIndex: cell must be positive");
  }

  void insert(const BoundingBox& box, T value) {
    if (box.empty()) throw std::invalid_argument("GridIndex::insert: empty box");
    entries_.push_back({box, value});
    const std::size_t idx = entries_.size() - 1;
    for_each_cell(box, [&](std::int64_t key) { cells_[key].push_back(idx); });
  }

  /// Collects values whose stored box intersects `query` (candidates are
  /// exact at the box level; callers refine with precise geometry).
  [[nodiscard]] std::vector<T> query(const BoundingBox& query) const {
    std::vector<T> out;
    if (query.empty() || entries_.empty()) return out;
    ++generation_;
    for_each_cell(query, [&](std::int64_t key) {
      auto it = cells_.find(key);
      if (it == cells_.end()) return;
      for (std::size_t idx : it->second) {
        if (seen_.size() <= idx) seen_.resize(entries_.size(), 0);
        if (seen_[idx] == generation_) continue;
        seen_[idx] = generation_;
        if (entries_[idx].box.intersects(query)) out.push_back(entries_[idx].value);
      }
    });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] double cell_size() const { return cell_; }

  void clear() {
    entries_.clear();
    cells_.clear();
    seen_.clear();
    generation_ = 0;
  }

 private:
  struct Entry {
    BoundingBox box;
    T value;
  };

  [[nodiscard]] std::int64_t cell_key(std::int64_t cx, std::int64_t cy) const {
    // Pack two 32-bit cell coordinates into one key.
    return (cx << 32) ^ (cy & 0xffffffff);
  }

  template <typename Fn>
  void for_each_cell(const BoundingBox& box, Fn&& fn) const {
    const auto cx0 = static_cast<std::int64_t>(std::floor(box.lo().x / cell_));
    const auto cy0 = static_cast<std::int64_t>(std::floor(box.lo().y / cell_));
    const auto cx1 = static_cast<std::int64_t>(std::floor(box.hi().x / cell_));
    const auto cy1 = static_cast<std::int64_t>(std::floor(box.hi().y / cell_));
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        fn(cell_key(cx, cy));
      }
    }
  }

  double cell_;
  std::vector<Entry> entries_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> cells_;
  // Query-time dedup scratch (an entry can live in many cells).
  mutable std::vector<std::uint32_t> seen_;
  mutable std::uint32_t generation_ = 0;
};

}  // namespace stem::geom
