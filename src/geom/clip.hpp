#pragma once

#include <optional>

#include "geom/polygon.hpp"

namespace stem::geom {

/// Clips `subject` against a *convex* clip polygon (Sutherland–Hodgman).
/// Returns the clipped polygon, or nullopt if the intersection is empty or
/// degenerate (area ~ 0).
///
/// The clip polygon must be convex; the subject may be any simple polygon.
/// Field events in this system are produced as disks, rectangles, and
/// convex hulls — all convex — so pairwise field intersection is exact.
[[nodiscard]] std::optional<Polygon> clip_convex(const Polygon& subject, const Polygon& convex_clip);

/// Area of the intersection of two polygons, at least one of which must be
/// convex (the other is clipped against it). Returns 0 for disjoint
/// regions. Throws std::invalid_argument if neither polygon is convex.
[[nodiscard]] double intersection_area(const Polygon& a, const Polygon& b);

/// True iff the polygon is convex (tolerating collinear vertices).
[[nodiscard]] bool is_convex(const Polygon& poly);

/// Intersection-over-union of two fields (one must be convex): the
/// standard footprint-accuracy score used to compare an estimated field
/// event against ground truth (forest-fire scenario).
[[nodiscard]] double iou(const Polygon& a, const Polygon& b);

}  // namespace stem::geom
