#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <variant>

#include "geom/point.hpp"
#include "geom/polygon.hpp"

namespace stem::geom {

/// Occurrence location of an event (paper Def. 4.1 / Sec. 4.2):
/// a *point event* occurs at a location point, a *field event* occupies a
/// polytope (polygon).
class Location {
 public:
  Location(Point p) : rep_(p) {}            // NOLINT(google-explicit-constructor)
  Location(Polygon poly) : rep_(std::move(poly)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_point() const { return std::holds_alternative<Point>(rep_); }
  [[nodiscard]] bool is_field() const { return !is_point(); }

  /// The point; throws std::bad_variant_access for field locations.
  [[nodiscard]] Point as_point() const { return std::get<Point>(rep_); }
  /// The field polygon; throws std::bad_variant_access for point locations.
  [[nodiscard]] const Polygon& as_field() const { return std::get<Polygon>(rep_); }

  /// Representative point: the point itself, or the field centroid.
  [[nodiscard]] Point representative() const {
    return is_point() ? as_point() : as_field().centroid();
  }

  [[nodiscard]] BoundingBox bbox() const {
    return is_point() ? BoundingBox(as_point()) : as_field().bbox();
  }

  /// Closed-region membership: a point location covers only itself.
  [[nodiscard]] bool covers(Point p) const {
    return is_point() ? almost_equal(as_point(), p) : as_field().contains(p);
  }

  friend bool operator==(const Location&, const Location&) = default;

 private:
  std::variant<Point, Polygon> rep_;
};

/// Spatial operators OP_S of the paper's spatial event conditions
/// (Eq. 4.4): "Inside, Outside, Joint" plus the natural complements, so
/// that all three relation classes of Sec. 4.2 (point-point, point-field,
/// field-field) are expressible.
enum class SpatialOp {
  kEqual,     ///< same point, or same region footprint (mutual containment)
  kInside,    ///< a lies entirely within b (point in field, field in field)
  kOutside,   ///< a and b share no point
  kContains,  ///< b lies entirely within a
  kJoint,     ///< the closed regions share at least one point
  kDisjoint,  ///< alias of kOutside (paper uses "Outside"; CEP literature "Disjoint")
};

/// Evaluates `a OP b`. Total over the four point/field combinations.
[[nodiscard]] bool eval_spatial(const Location& a, SpatialOp op, const Location& b);

/// Minimum Euclidean distance between two locations (0 when joint).
[[nodiscard]] double location_distance(const Location& a, const Location& b);

[[nodiscard]] std::string_view to_string(SpatialOp op);
[[nodiscard]] std::optional<SpatialOp> spatial_op_from_string(std::string_view s);

std::ostream& operator<<(std::ostream& os, SpatialOp op);
std::ostream& operator<<(std::ostream& os, const Location& loc);

/// Aggregation functions g_s over entity locations (Eq. 4.4).
enum class SpatialAggregate {
  kCentroid,  ///< mean of representative points (a point location)
  kHull,      ///< convex hull of representative points (a field location)
  kUnionBox,  ///< bounding box of all locations (a field location)
};

[[nodiscard]] std::string_view to_string(SpatialAggregate a);
[[nodiscard]] std::optional<SpatialAggregate> spatial_aggregate_from_string(std::string_view s);

/// Applies an aggregation to one or more locations. Hull of fewer than 3
/// distinct points degrades to kCentroid. Throws std::invalid_argument on
/// an empty range.
[[nodiscard]] Location aggregate_locations(SpatialAggregate agg, const Location* first,
                                           std::size_t count);

}  // namespace stem::geom
