#include "geom/location.hpp"

#include <ostream>
#include <stdexcept>
#include <vector>

#include "geom/convex_hull.hpp"

namespace stem::geom {

namespace {

bool locations_joint(const Location& a, const Location& b) {
  if (a.is_point() && b.is_point()) return almost_equal(a.as_point(), b.as_point());
  if (a.is_point()) return b.as_field().contains(a.as_point());
  if (b.is_point()) return a.as_field().contains(b.as_point());
  return a.as_field().intersects(b.as_field());
}

bool location_inside(const Location& a, const Location& b) {
  if (b.is_point()) {
    // Only a coincident point can be inside a point location.
    return a.is_point() && almost_equal(a.as_point(), b.as_point());
  }
  if (a.is_point()) return b.as_field().contains(a.as_point());
  return b.as_field().contains(a.as_field());
}

}  // namespace

bool eval_spatial(const Location& a, SpatialOp op, const Location& b) {
  switch (op) {
    case SpatialOp::kEqual:
      if (a.is_point() != b.is_point()) return false;
      if (a.is_point()) return almost_equal(a.as_point(), b.as_point());
      return a.as_field().contains(b.as_field()) && b.as_field().contains(a.as_field());
    case SpatialOp::kInside: return location_inside(a, b);
    case SpatialOp::kContains: return location_inside(b, a);
    case SpatialOp::kOutside:
    case SpatialOp::kDisjoint: return !locations_joint(a, b);
    case SpatialOp::kJoint: return locations_joint(a, b);
  }
  return false;  // unreachable
}

double location_distance(const Location& a, const Location& b) {
  if (a.is_point() && b.is_point()) return distance(a.as_point(), b.as_point());
  if (a.is_point()) return b.as_field().distance_to(a.as_point());
  if (b.is_point()) return a.as_field().distance_to(b.as_point());
  const Polygon& pa = a.as_field();
  const Polygon& pb = b.as_field();
  if (pa.intersects(pb)) return 0.0;
  double best = std::numeric_limits<double>::max();
  for (const Point& v : pa.vertices()) best = std::min(best, pb.distance_to(v));
  for (const Point& v : pb.vertices()) best = std::min(best, pa.distance_to(v));
  return best;
}

std::string_view to_string(SpatialOp op) {
  switch (op) {
    case SpatialOp::kEqual: return "equal";
    case SpatialOp::kInside: return "inside";
    case SpatialOp::kOutside: return "outside";
    case SpatialOp::kContains: return "contains";
    case SpatialOp::kJoint: return "joint";
    case SpatialOp::kDisjoint: return "disjoint";
  }
  return "?";
}

std::optional<SpatialOp> spatial_op_from_string(std::string_view s) {
  if (s == "equal") return SpatialOp::kEqual;
  if (s == "inside") return SpatialOp::kInside;
  if (s == "outside") return SpatialOp::kOutside;
  if (s == "contains") return SpatialOp::kContains;
  if (s == "joint") return SpatialOp::kJoint;
  if (s == "disjoint") return SpatialOp::kDisjoint;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, SpatialOp op) { return os << to_string(op); }

std::ostream& operator<<(std::ostream& os, const Location& loc) {
  if (loc.is_point()) return os << loc.as_point();
  return os << loc.as_field();
}

std::string_view to_string(SpatialAggregate a) {
  switch (a) {
    case SpatialAggregate::kCentroid: return "centroid";
    case SpatialAggregate::kHull: return "hull";
    case SpatialAggregate::kUnionBox: return "unionbox";
  }
  return "?";
}

std::optional<SpatialAggregate> spatial_aggregate_from_string(std::string_view s) {
  if (s == "centroid") return SpatialAggregate::kCentroid;
  if (s == "hull") return SpatialAggregate::kHull;
  if (s == "unionbox") return SpatialAggregate::kUnionBox;
  return std::nullopt;
}

Location aggregate_locations(SpatialAggregate agg, const Location* first, std::size_t count) {
  if (count == 0 || first == nullptr) {
    throw std::invalid_argument("aggregate_locations: empty input");
  }
  switch (agg) {
    case SpatialAggregate::kCentroid: {
      Point mean{0, 0};
      for (std::size_t i = 0; i < count; ++i) mean = mean + first[i].representative();
      return Location(mean / static_cast<double>(count));
    }
    case SpatialAggregate::kHull: {
      std::vector<Point> pts;
      for (std::size_t i = 0; i < count; ++i) {
        if (first[i].is_point()) {
          pts.push_back(first[i].as_point());
        } else {
          const auto& vs = first[i].as_field().vertices();
          pts.insert(pts.end(), vs.begin(), vs.end());
        }
      }
      if (auto hull = convex_hull(pts)) return Location(*std::move(hull));
      return aggregate_locations(SpatialAggregate::kCentroid, first, count);
    }
    case SpatialAggregate::kUnionBox: {
      BoundingBox box;
      for (std::size_t i = 0; i < count; ++i) box.expand(first[i].bbox());
      return Location(Polygon::rectangle(box.lo(), box.hi()));
    }
  }
  throw std::logic_error("aggregate_locations: bad aggregate");
}

}  // namespace stem::geom
