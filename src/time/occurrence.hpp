#pragma once

#include <iosfwd>
#include <variant>

#include "time/interval.hpp"
#include "time/time_point.hpp"

namespace stem::time_model {

/// Occurrence time of an event (paper Def. 4.1 / Sec. 4.2).
///
/// A *punctual event* occurs at a single time point; an *interval event*
/// occupies a closed time interval marked by starting and ending points.
/// Degenerate intervals are normalized to punctual times, so the
/// punctual/interval distinction is canonical.
class OccurrenceTime {
 public:
  /// Punctual occurrence at `t`.
  constexpr OccurrenceTime(TimePoint t) : rep_(t) {}  // NOLINT(google-explicit-constructor)
  /// Interval occurrence. A degenerate interval becomes punctual.
  constexpr OccurrenceTime(TimeInterval iv)  // NOLINT(google-explicit-constructor)
      : rep_(iv.degenerate() ? Rep(iv.begin()) : Rep(iv)) {}

  [[nodiscard]] constexpr bool is_punctual() const { return std::holds_alternative<TimePoint>(rep_); }
  [[nodiscard]] constexpr bool is_interval() const { return !is_punctual(); }

  /// Start of the occurrence (the point itself if punctual).
  [[nodiscard]] constexpr TimePoint begin() const {
    return is_punctual() ? std::get<TimePoint>(rep_) : std::get<TimeInterval>(rep_).begin();
  }
  /// End of the occurrence (the point itself if punctual).
  [[nodiscard]] constexpr TimePoint end() const {
    return is_punctual() ? std::get<TimePoint>(rep_) : std::get<TimeInterval>(rep_).end();
  }
  [[nodiscard]] constexpr Duration length() const { return end() - begin(); }

  /// The occurrence viewed as a (possibly degenerate) closed interval.
  [[nodiscard]] constexpr TimeInterval as_interval() const { return TimeInterval(begin(), end()); }

  /// The punctual time; throws std::bad_variant_access if interval.
  [[nodiscard]] constexpr TimePoint as_point() const { return std::get<TimePoint>(rep_); }

  [[nodiscard]] constexpr bool covers(TimePoint t) const { return begin() <= t && t <= end(); }

  [[nodiscard]] constexpr OccurrenceTime shifted(Duration d) const {
    if (is_punctual()) return OccurrenceTime(as_point() + d);
    return OccurrenceTime(std::get<TimeInterval>(rep_).shifted(d));
  }

  friend constexpr bool operator==(const OccurrenceTime&, const OccurrenceTime&) = default;

 private:
  using Rep = std::variant<TimePoint, TimeInterval>;
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const OccurrenceTime& ot);

}  // namespace stem::time_model
