#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>

#include "time/time_point.hpp"

namespace stem::time_model {

/// A closed time interval [begin, end] with begin <= end, marking the
/// starting and ending time points of an interval event (paper Sec. 4.2).
///
/// A degenerate interval with begin == end is permitted and is semantically
/// the punctual time `begin`; `OccurrenceTime` normalizes it.
class TimeInterval {
 public:
  /// Constructs [begin, end]. Throws std::invalid_argument if end < begin.
  constexpr TimeInterval(TimePoint begin, TimePoint end) : begin_(begin), end_(end) {
    if (end < begin) throw std::invalid_argument("TimeInterval: end < begin");
  }

  [[nodiscard]] constexpr TimePoint begin() const { return begin_; }
  [[nodiscard]] constexpr TimePoint end() const { return end_; }
  [[nodiscard]] constexpr Duration length() const { return end_ - begin_; }
  [[nodiscard]] constexpr bool degenerate() const { return begin_ == end_; }

  /// True iff t lies within [begin, end] (closed on both sides).
  [[nodiscard]] constexpr bool contains(TimePoint t) const { return begin_ <= t && t <= end_; }
  /// True iff `other` lies entirely within this interval.
  [[nodiscard]] constexpr bool contains(const TimeInterval& other) const {
    return begin_ <= other.begin_ && other.end_ <= end_;
  }
  /// True iff the closed intervals share at least one time point.
  [[nodiscard]] constexpr bool intersects(const TimeInterval& other) const {
    return begin_ <= other.end_ && other.begin_ <= end_;
  }

  /// The common sub-interval, if any.
  [[nodiscard]] constexpr std::optional<TimeInterval> intersection(const TimeInterval& other) const {
    const TimePoint b = begin_ > other.begin_ ? begin_ : other.begin_;
    const TimePoint e = end_ < other.end_ ? end_ : other.end_;
    if (e < b) return std::nullopt;
    return TimeInterval(b, e);
  }

  /// Smallest interval covering both operands.
  [[nodiscard]] constexpr TimeInterval hull(const TimeInterval& other) const {
    const TimePoint b = begin_ < other.begin_ ? begin_ : other.begin_;
    const TimePoint e = end_ > other.end_ ? end_ : other.end_;
    return TimeInterval(b, e);
  }

  /// Interval translated by d.
  [[nodiscard]] constexpr TimeInterval shifted(Duration d) const {
    return TimeInterval(begin_ + d, end_ + d);
  }

  /// Midpoint (rounds toward begin on odd lengths).
  [[nodiscard]] constexpr TimePoint midpoint() const {
    return begin_ + Duration((end_ - begin_).ticks() / 2);
  }

  friend constexpr bool operator==(const TimeInterval&, const TimeInterval&) = default;

 private:
  TimePoint begin_;
  TimePoint end_;
};

std::ostream& operator<<(std::ostream& os, const TimeInterval& iv);

}  // namespace stem::time_model
