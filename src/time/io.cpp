#include <ostream>

#include "time/interval.hpp"
#include "time/occurrence.hpp"
#include "time/time_point.hpp"

namespace stem::time_model {

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ticks() << "us"; }

std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << "@" << t.ticks(); }

std::ostream& operator<<(std::ostream& os, const TimeInterval& iv) {
  return os << "[" << iv.begin().ticks() << "," << iv.end().ticks() << "]";
}

std::ostream& operator<<(std::ostream& os, const OccurrenceTime& ot) {
  if (ot.is_punctual()) return os << ot.as_point();
  return os << ot.as_interval();
}

}  // namespace stem::time_model
