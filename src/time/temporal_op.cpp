#include "time/temporal_op.hpp"

#include <ostream>
#include <stdexcept>

namespace stem::time_model {

bool eval_temporal(const OccurrenceTime& a, TemporalOp op, const OccurrenceTime& b) {
  const TimePoint ab = a.begin(), ae = a.end();
  const TimePoint bb = b.begin(), be = b.end();
  switch (op) {
    case TemporalOp::kBefore: return ae < bb;
    case TemporalOp::kAfter: return be < ab;
    case TemporalOp::kMeets: return ae == bb;
    case TemporalOp::kMetBy: return ab == be;
    case TemporalOp::kOverlaps: return ab < bb && bb <= ae && ae < be;
    case TemporalOp::kOverlappedBy: return bb < ab && ab <= be && be < ae;
    case TemporalOp::kDuring: return bb <= ab && ae <= be && !(ab == bb && ae == be);
    case TemporalOp::kContains: return ab <= bb && be <= ae && !(ab == bb && ae == be);
    case TemporalOp::kStarts: return ab == bb;
    case TemporalOp::kFinishes: return ae == be;
    case TemporalOp::kEquals: return ab == bb && ae == be;
    case TemporalOp::kIntersects: return ab <= be && bb <= ae;
    case TemporalOp::kWithin: return bb <= ab && ae <= be;
  }
  return false;  // unreachable
}

bool eval_temporal(const OccurrenceTime& a, Duration offset, TemporalOp op,
                   const OccurrenceTime& b) {
  return eval_temporal(a.shifted(offset), op, b);
}

std::string_view to_string(TemporalOp op) {
  switch (op) {
    case TemporalOp::kBefore: return "before";
    case TemporalOp::kAfter: return "after";
    case TemporalOp::kMeets: return "meets";
    case TemporalOp::kMetBy: return "metby";
    case TemporalOp::kOverlaps: return "overlaps";
    case TemporalOp::kOverlappedBy: return "overlappedby";
    case TemporalOp::kDuring: return "during";
    case TemporalOp::kContains: return "contains";
    case TemporalOp::kStarts: return "starts";
    case TemporalOp::kFinishes: return "finishes";
    case TemporalOp::kEquals: return "equals";
    case TemporalOp::kIntersects: return "intersects";
    case TemporalOp::kWithin: return "within";
  }
  return "?";
}

std::optional<TemporalOp> temporal_op_from_string(std::string_view s) {
  if (s == "before") return TemporalOp::kBefore;
  if (s == "after") return TemporalOp::kAfter;
  if (s == "meets") return TemporalOp::kMeets;
  if (s == "metby") return TemporalOp::kMetBy;
  if (s == "overlaps") return TemporalOp::kOverlaps;
  if (s == "overlappedby") return TemporalOp::kOverlappedBy;
  if (s == "during") return TemporalOp::kDuring;
  if (s == "contains") return TemporalOp::kContains;
  if (s == "starts" || s == "begin") return TemporalOp::kStarts;
  if (s == "finishes" || s == "end") return TemporalOp::kFinishes;
  if (s == "equals") return TemporalOp::kEquals;
  if (s == "intersects") return TemporalOp::kIntersects;
  if (s == "within") return TemporalOp::kWithin;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, TemporalOp op) { return os << to_string(op); }

std::string_view to_string(TimeAggregate a) {
  switch (a) {
    case TimeAggregate::kEarliest: return "earliest";
    case TimeAggregate::kLatest: return "latest";
    case TimeAggregate::kSpan: return "span";
    case TimeAggregate::kMean: return "mean";
  }
  return "?";
}

std::optional<TimeAggregate> time_aggregate_from_string(std::string_view s) {
  if (s == "earliest") return TimeAggregate::kEarliest;
  if (s == "latest") return TimeAggregate::kLatest;
  if (s == "span") return TimeAggregate::kSpan;
  if (s == "mean") return TimeAggregate::kMean;
  return std::nullopt;
}

OccurrenceTime aggregate_times(TimeAggregate agg, const OccurrenceTime* first, std::size_t count) {
  if (count == 0 || first == nullptr) {
    throw std::invalid_argument("aggregate_times: empty input");
  }
  TimePoint earliest = first->begin();
  TimePoint latest = first->end();
  Tick mid_sum = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const OccurrenceTime& ot = first[i];
    if (ot.begin() < earliest) earliest = ot.begin();
    if (latest < ot.end()) latest = ot.end();
    mid_sum += ot.as_interval().midpoint().ticks();
  }
  switch (agg) {
    case TimeAggregate::kEarliest: return OccurrenceTime(earliest);
    case TimeAggregate::kLatest: return OccurrenceTime(latest);
    case TimeAggregate::kSpan: return OccurrenceTime(TimeInterval(earliest, latest));
    case TimeAggregate::kMean:
      return OccurrenceTime(TimePoint(mid_sum / static_cast<Tick>(count)));
  }
  throw std::logic_error("aggregate_times: bad aggregate");
}

}  // namespace stem::time_model
