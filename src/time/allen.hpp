#pragma once

#include <iosfwd>
#include <string_view>

#include "time/interval.hpp"
#include "time/time_point.hpp"

namespace stem::time_model {

/// The 13 Allen interval relations. Exactly one holds between any two
/// non-degenerate intervals; we extend the definitions to degenerate
/// (point-like) intervals so that the classification stays total, which is
/// what the paper's three relation classes (point-point, point-interval,
/// interval-interval; Sec. 4.2) require.
enum class AllenRelation {
  kBefore,        ///< a.end  <  b.begin
  kMeets,         ///< a.end  == b.begin (and a, b not both points)
  kOverlaps,      ///< a.begin < b.begin < a.end < b.end
  kStarts,        ///< a.begin == b.begin, a.end < b.end
  kDuring,        ///< b.begin < a.begin, a.end < b.end
  kFinishes,      ///< a.end == b.end, b.begin < a.begin
  kEquals,        ///< identical endpoints
  kFinishedBy,    ///< inverse of kFinishes
  kContains,      ///< inverse of kDuring
  kStartedBy,     ///< inverse of kStarts
  kOverlappedBy,  ///< inverse of kOverlaps
  kMetBy,         ///< inverse of kMeets
  kAfter,         ///< inverse of kBefore
};

/// Relation between two time points (point-point class, Sec. 4.2).
enum class PointRelation { kBefore, kSame, kAfter };

/// Relation of a point relative to a closed interval (point-interval class).
enum class PointIntervalRelation { kBefore, kStarts, kDuring, kFinishes, kAfter };

/// Classifies the Allen relation of `a` relative to `b`.
/// Total over all closed intervals, including degenerate ones.
[[nodiscard]] AllenRelation allen_relation(const TimeInterval& a, const TimeInterval& b);

/// Classifies two time points.
[[nodiscard]] PointRelation point_relation(TimePoint a, TimePoint b);

/// Classifies point `t` relative to interval `iv`.
[[nodiscard]] PointIntervalRelation point_interval_relation(TimePoint t, const TimeInterval& iv);

/// The inverse relation: allen_relation(b, a) == inverse(allen_relation(a, b)).
[[nodiscard]] AllenRelation inverse(AllenRelation r);

[[nodiscard]] std::string_view to_string(AllenRelation r);
[[nodiscard]] std::string_view to_string(PointRelation r);
[[nodiscard]] std::string_view to_string(PointIntervalRelation r);

std::ostream& operator<<(std::ostream& os, AllenRelation r);
std::ostream& operator<<(std::ostream& os, PointRelation r);
std::ostream& operator<<(std::ostream& os, PointIntervalRelation r);

}  // namespace stem::time_model
