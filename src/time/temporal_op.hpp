#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

#include "time/occurrence.hpp"

namespace stem::time_model {

/// Temporal operators OP_T of the paper's temporal event conditions
/// (Eq. 4.3): "Before, After, During, Begin, End" plus the full Allen set,
/// so that all three relation classes of Sec. 4.2 (punctual-punctual,
/// punctual-interval, interval-interval) are expressible.
///
/// Semantics are defined over generalized occurrences: a punctual
/// occurrence behaves as the degenerate closed interval [t, t].
enum class TemporalOp {
  kBefore,        ///< a ends strictly before b begins
  kAfter,         ///< a begins strictly after b ends
  kMeets,         ///< a.end == b.begin
  kMetBy,         ///< a.begin == b.end
  kOverlaps,      ///< a.begin < b.begin, b.begin <= a.end < b.end
  kOverlappedBy,  ///< mirror of kOverlaps
  kDuring,        ///< a lies within b (not equal): b.begin <= a.begin, a.end <= b.end
  kContains,      ///< b lies within a (not equal)
  kStarts,        ///< a.begin == b.begin ("Begin" in the paper)
  kFinishes,      ///< a.end == b.end ("End" in the paper)
  kEquals,        ///< same begin and end
  kIntersects,    ///< the closed occurrences share at least one time point
  kWithin,        ///< a lies within b, equality allowed
};

/// Evaluates `a OP b` under the generalized-interval semantics above.
///
/// Every operator is total over the four combinations punctual/interval x
/// punctual/interval; this is the completeness requirement the paper's
/// related-work section levels against RTL-style models (Sec. 2).
[[nodiscard]] bool eval_temporal(const OccurrenceTime& a, TemporalOp op, const OccurrenceTime& b);

/// Evaluates `a OP b` where `a` is additionally shifted by `offset` first,
/// supporting conditions like "t_x + 5 Before t_y" (paper Sec. 4.1 example).
[[nodiscard]] bool eval_temporal(const OccurrenceTime& a, Duration offset, TemporalOp op,
                                 const OccurrenceTime& b);

[[nodiscard]] std::string_view to_string(TemporalOp op);
/// Parses an operator name as written in the event language ("before",
/// "during", ...). Case-sensitive, lowercase. Returns nullopt if unknown.
[[nodiscard]] std::optional<TemporalOp> temporal_op_from_string(std::string_view s);

std::ostream& operator<<(std::ostream& os, TemporalOp op);

/// Aggregation functions g_t over entity times (Eq. 4.3).
enum class TimeAggregate {
  kEarliest,  ///< earliest begin, as a punctual time
  kLatest,    ///< latest end, as a punctual time
  kSpan,      ///< hull [earliest begin, latest end]
  kMean,      ///< mean of midpoints, as a punctual time
};

[[nodiscard]] std::string_view to_string(TimeAggregate a);
[[nodiscard]] std::optional<TimeAggregate> time_aggregate_from_string(std::string_view s);

/// Applies an aggregation function to one or more occurrence times.
/// Throws std::invalid_argument on an empty range.
[[nodiscard]] OccurrenceTime aggregate_times(TimeAggregate agg, const OccurrenceTime* first,
                                             std::size_t count);

}  // namespace stem::time_model
