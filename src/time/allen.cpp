#include "time/allen.hpp"

#include <ostream>

namespace stem::time_model {

AllenRelation allen_relation(const TimeInterval& a, const TimeInterval& b) {
  const TimePoint ab = a.begin(), ae = a.end();
  const TimePoint bb = b.begin(), be = b.end();

  if (ab == bb && ae == be) return AllenRelation::kEquals;
  if (ae < bb) return AllenRelation::kBefore;
  if (be < ab) return AllenRelation::kAfter;
  if (ae == bb) return AllenRelation::kMeets;
  if (be == ab) return AllenRelation::kMetBy;
  if (ab == bb) return ae < be ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  if (ae == be) return ab < bb ? AllenRelation::kFinishedBy : AllenRelation::kFinishes;
  if (bb < ab && ae < be) return AllenRelation::kDuring;
  if (ab < bb && be < ae) return AllenRelation::kContains;
  return ab < bb ? AllenRelation::kOverlaps : AllenRelation::kOverlappedBy;
}

PointRelation point_relation(TimePoint a, TimePoint b) {
  if (a < b) return PointRelation::kBefore;
  if (b < a) return PointRelation::kAfter;
  return PointRelation::kSame;
}

PointIntervalRelation point_interval_relation(TimePoint t, const TimeInterval& iv) {
  if (t < iv.begin()) return PointIntervalRelation::kBefore;
  if (t == iv.begin()) return PointIntervalRelation::kStarts;
  if (t < iv.end()) return PointIntervalRelation::kDuring;
  if (t == iv.end()) return PointIntervalRelation::kFinishes;
  return PointIntervalRelation::kAfter;
}

AllenRelation inverse(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return AllenRelation::kAfter;
    case AllenRelation::kMeets: return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps: return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts: return AllenRelation::kStartedBy;
    case AllenRelation::kDuring: return AllenRelation::kContains;
    case AllenRelation::kFinishes: return AllenRelation::kFinishedBy;
    case AllenRelation::kEquals: return AllenRelation::kEquals;
    case AllenRelation::kFinishedBy: return AllenRelation::kFinishes;
    case AllenRelation::kContains: return AllenRelation::kDuring;
    case AllenRelation::kStartedBy: return AllenRelation::kStarts;
    case AllenRelation::kOverlappedBy: return AllenRelation::kOverlaps;
    case AllenRelation::kMetBy: return AllenRelation::kMeets;
    case AllenRelation::kAfter: return AllenRelation::kBefore;
  }
  return AllenRelation::kEquals;  // unreachable
}

std::string_view to_string(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "Before";
    case AllenRelation::kMeets: return "Meets";
    case AllenRelation::kOverlaps: return "Overlaps";
    case AllenRelation::kStarts: return "Starts";
    case AllenRelation::kDuring: return "During";
    case AllenRelation::kFinishes: return "Finishes";
    case AllenRelation::kEquals: return "Equals";
    case AllenRelation::kFinishedBy: return "FinishedBy";
    case AllenRelation::kContains: return "Contains";
    case AllenRelation::kStartedBy: return "StartedBy";
    case AllenRelation::kOverlappedBy: return "OverlappedBy";
    case AllenRelation::kMetBy: return "MetBy";
    case AllenRelation::kAfter: return "After";
  }
  return "?";
}

std::string_view to_string(PointRelation r) {
  switch (r) {
    case PointRelation::kBefore: return "Before";
    case PointRelation::kSame: return "Same";
    case PointRelation::kAfter: return "After";
  }
  return "?";
}

std::string_view to_string(PointIntervalRelation r) {
  switch (r) {
    case PointIntervalRelation::kBefore: return "Before";
    case PointIntervalRelation::kStarts: return "Starts";
    case PointIntervalRelation::kDuring: return "During";
    case PointIntervalRelation::kFinishes: return "Finishes";
    case PointIntervalRelation::kAfter: return "After";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, AllenRelation r) { return os << to_string(r); }
std::ostream& operator<<(std::ostream& os, PointRelation r) { return os << to_string(r); }
std::ostream& operator<<(std::ostream& os, PointIntervalRelation r) { return os << to_string(r); }

}  // namespace stem::time_model
