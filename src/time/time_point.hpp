#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

/// Discrete time model (paper Section 4, "Time Model").
///
/// Following Snoop's time model, time is a discrete, totally ordered
/// collection of time points with limited precision. One `Tick` is the
/// smallest representable unit of time in the system (the simulation uses
/// 1 tick = 1 microsecond, but nothing in this module depends on that).
namespace stem::time_model {

/// Raw signed tick count. Signed so that durations and differences are
/// closed under subtraction.
using Tick = std::int64_t;

/// A length of time, in ticks. Strong type: cannot be mixed with TimePoint
/// without explicit intent.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(Tick ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr Tick ticks() const { return ticks_; }

  constexpr Duration& operator+=(Duration d) {
    ticks_ += d.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    ticks_ -= d.ticks_;
    return *this;
  }
  constexpr Duration& operator*=(Tick k) {
    ticks_ *= k;
    return *this;
  }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ticks_ + b.ticks_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ticks_ - b.ticks_); }
  friend constexpr Duration operator*(Duration a, Tick k) { return Duration(a.ticks_ * k); }
  friend constexpr Duration operator*(Tick k, Duration a) { return Duration(a.ticks_ * k); }
  friend constexpr Duration operator/(Duration a, Tick k) { return Duration(a.ticks_ / k); }
  friend constexpr Duration operator-(Duration a) { return Duration(-a.ticks_); }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }

 private:
  Tick ticks_ = 0;
};

/// A point on the discrete global timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Tick ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr Tick ticks() const { return ticks_; }

  constexpr TimePoint& operator+=(Duration d) {
    ticks_ += d.ticks();
    return *this;
  }
  constexpr TimePoint& operator-=(Duration d) {
    ticks_ -= d.ticks();
    return *this;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint(t.ticks_ + d.ticks()); }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return TimePoint(t.ticks_ + d.ticks()); }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint(t.ticks_ - d.ticks()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration(a.ticks_ - b.ticks_); }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  /// Smallest representable time point ("minus infinity" sentinel).
  [[nodiscard]] static constexpr TimePoint min() { return TimePoint(std::numeric_limits<Tick>::min()); }
  /// Largest representable time point ("plus infinity" sentinel).
  [[nodiscard]] static constexpr TimePoint max() { return TimePoint(std::numeric_limits<Tick>::max()); }
  /// The origin of the timeline.
  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint(0); }

 private:
  Tick ticks_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

/// Convenience literal-style factories (1 tick == 1 microsecond by system
/// convention; the simulation layers adopt this convention throughout).
constexpr Duration microseconds(Tick n) { return Duration(n); }
constexpr Duration milliseconds(Tick n) { return Duration(n * 1000); }
constexpr Duration seconds(Tick n) { return Duration(n * 1'000'000); }
constexpr Duration minutes(Tick n) { return Duration(n * 60'000'000); }

}  // namespace stem::time_model
