#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "core/attribute.hpp"
#include "core/entity.hpp"
#include "core/ids.hpp"

namespace stem::net {

/// Network node identity. Nodes are observers (motes, sinks, CCUs,
/// database servers), so the observer id doubles as the address.
using NodeId = core::ObserverId;

/// A command traveling down the actuation path of Fig. 1 (CCU -> dispatch
/// node -> actor mote). `verb` names the actuation ("close_window",
/// "suppress"), `args` parameterizes it, and `cause` records the event
/// instance that triggered it, preserving the Event-Action relation.
/// Executed-command reports flowing back up ("Publish Executed Actuator
/// Commands", Fig. 1) reuse the struct with kind == kReport; they route on
/// a separate topic so they can never re-trigger actuation.
struct Command {
  enum class Kind { kActuate, kReport };

  NodeId target;  ///< final actor mote (kActuate) / reporting actor (kReport)
  std::string verb;
  core::AttributeSet args;
  core::EventInstanceKey cause;
  Kind kind = Kind::kActuate;
};

std::ostream& operator<<(std::ostream& os, const Command& cmd);

/// Wire payload: an entity moving up the sensing path, a command moving
/// down the actuation path, or a broker subscription request.
struct Subscribe {
  std::string topic;
  NodeId subscriber;
};

/// Several entities aggregated into one packet. The paper's motes "serve
/// as repeaters to relay and aggregate packets from other motes"; batching
/// amortizes the per-message header at the cost of added latency
/// (experiment E12 quantifies the trade-off).
struct EntityBatch {
  std::vector<core::Entity> entities;
};

using Payload = std::variant<Subscribe, Command, core::Entity, EntityBatch>;

/// Reliable-session framing (stem::net::ReliableEndpoint). Plain messages
/// keep kind == kPlain and ride the network exactly as before; data frames
/// carry a per-(src,dst) sequence number, ack frames a cumulative ack.
enum class FrameKind : std::uint8_t { kPlain, kData, kAck };

/// A network message. `bytes` is the estimated wire size used for the
/// traffic accounting of experiment E5. `kind`/`seq`/`ack` belong to the
/// reliable-session layer and are zero/kPlain for unreliable traffic.
struct Message {
  NodeId src;
  NodeId dst;
  Payload payload;
  std::size_t bytes = 0;
  std::uint32_t hops = 0;  ///< incremented per relay
  FrameKind kind = FrameKind::kPlain;
  std::uint64_t seq = 0;  ///< data frame sequence number (1-based)
  std::uint64_t ack = 0;  ///< cumulative ack: all seq <= ack received
};

/// Estimated wire size of a payload: a fixed header plus per-attribute and
/// per-vertex costs. The absolute constants matter less than the relative
/// cost of shipping raw observations vs. condensed event instances.
[[nodiscard]] std::size_t estimate_size(const Payload& payload);

}  // namespace stem::net
