#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "net/network.hpp"

namespace stem::net {

/// Reliable, exactly-once-effect sessions over the lossy Network.
///
/// A ReliableEndpoint owns its node's registration: it splits traffic into
/// per-(src,dst) sessions with monotone sequence numbers, delivers data
/// frames to the upper handler in order and exactly once, returns
/// cumulative acks, and retransmits unacked frames on a simulator timer
/// with capped exponential backoff plus seeded jitter. Plain (kPlain)
/// frames pass straight through, so reliable and legacy nodes interoperate
/// on the same network.
///
/// The protocol survives arbitrary loss of data *and* ack frames: acks are
/// cumulative (any later ack covers a lost one) and duplicate data frames
/// are suppressed by the receiver's next-expected counter and re-acked, so
/// a lost ack only costs a retransmission, never a duplicate delivery.
class ReliableEndpoint {
 public:
  struct Options {
    /// First retransmission timeout after a send.
    time_model::Duration initial_rto = time_model::milliseconds(20);
    /// RTO multiplier per consecutive timeout (capped at max_rto).
    double backoff = 2.0;
    time_model::Duration max_rto = time_model::milliseconds(500);
    /// Seeded uniform jitter U(0, rto_jitter) added to every timer, so
    /// retransmission storms from many sessions decorrelate.
    time_model::Duration rto_jitter = time_model::milliseconds(5);
    /// Give up on a session's unacked frames after this many consecutive
    /// timeouts without ack progress (0 = retry forever). Abandoned frames
    /// count in stats().gave_up — the observable degradation signal under
    /// permanent partition.
    std::uint32_t max_retries = 0;
  };

  struct Stats {
    std::uint64_t data_sent = 0;     ///< first transmissions (not retries)
    std::uint64_t retransmits = 0;   ///< frames re-sent by the timer
    std::uint64_t acks_sent = 0;
    std::uint64_t delivered = 0;     ///< in-order deliveries to the upper handler
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t gave_up = 0;       ///< frames abandoned after max_retries
  };

  /// Registers `id` on the network with this endpoint as its handler;
  /// `upper` receives exactly-once, in-order data payloads (and any plain
  /// frames verbatim).
  ReliableEndpoint(Network& network, NodeId id, Network::Handler upper, Options options,
                   std::uint64_t seed = 0x5eed);
  ReliableEndpoint(Network& network, NodeId id, Network::Handler upper)
      : ReliableEndpoint(network, std::move(id), std::move(upper), Options{}) {}
  ~ReliableEndpoint();
  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// Sends `payload` reliably to `dst` (a direct link must exist). Returns
  /// after the first transmission attempt; delivery is guaranteed (unless
  /// max_retries gives up) regardless of what the network drops.
  /// `bytes` overrides the wire-size estimate (0 = estimate).
  void send(const NodeId& dst, Payload payload, std::size_t bytes = 0);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Frames sent but not yet cumulatively acked, across all sessions.
  [[nodiscard]] std::uint64_t in_flight() const;
  [[nodiscard]] const NodeId& id() const { return id_; }

 private:
  struct SendSession {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Message> unacked;  ///< seq -> frame, ordered
    time_model::Duration rto;
    std::uint32_t timeouts = 0;  ///< consecutive, without ack progress
    sim::TaskId timer{};
    bool timer_armed = false;
  };
  struct RecvSession {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Message> out_of_order;  ///< seq -> frame
  };

  void on_message(const Message& msg);
  void on_data(const Message& msg);
  void on_ack(const Message& msg);
  void arm_timer(const NodeId& dst, SendSession& s);
  void on_timeout(const NodeId& dst);
  void send_ack(const NodeId& to, std::uint64_t ack);

  Network& network_;
  NodeId id_;
  Network::Handler upper_;
  Options options_;
  sim::Rng rng_;
  Stats stats_;
  std::unordered_map<std::string, SendSession> send_sessions_;  ///< by dst
  std::unordered_map<std::string, RecvSession> recv_sessions_;  ///< by src
};

}  // namespace stem::net
