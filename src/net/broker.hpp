#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "net/reliable.hpp"

namespace stem::runtime {
class ShardedEngineRuntime;
}

namespace stem::net {

/// Topic-based publish/subscribe broker — the "Publish Cyber-Physical
/// Event Instances / Subscribe Interested Cyber-Physical Events and Cyber
/// Events" arrows of Fig. 1.
///
/// The broker is itself a network node: publishers send messages to it,
/// and it re-sends them to every subscriber over the network, so broker
/// hops are accounted in the traffic statistics. Topics are event type
/// ids for entities and "cmd:<actor>" for commands.
class Broker {
 public:
  /// Opt-in reliable relay: the broker registers through a
  /// ReliableEndpoint, so reliable publishers get exactly-once delivery
  /// into the broker (plain publishers interoperate unchanged), and
  /// subscriptions marked reliable are fanned out over acked sessions.
  struct Options {
    bool reliable = false;
    ReliableEndpoint::Options session;
    std::uint64_t seed = 0xb40c;
  };

  /// Registers the broker as node `id` on `network`. Every node that will
  /// publish or subscribe must later be linked to the broker.
  Broker(Network& network, NodeId id, Options options);
  Broker(Network& network, NodeId id) : Broker(network, std::move(id), Options{}) {}

  [[nodiscard]] const NodeId& id() const { return id_; }

  /// Subscribes a node to a topic (local call; the Subscribe payload also
  /// arrives via the network when remote nodes send it). A reliable
  /// subscription fans out over the broker's acked session — the
  /// subscriber must itself be a ReliableEndpoint, and the broker must
  /// have been constructed with Options::reliable (throws otherwise).
  void subscribe(const std::string& topic, const NodeId& subscriber, bool reliable = false);

  /// Topic of an entity: its event type (observations use "obs:<sensor>").
  [[nodiscard]] static std::string topic_of(const core::Entity& entity);
  /// Topic of a command addressed to an actor mote.
  [[nodiscard]] static std::string command_topic(const NodeId& actor);
  /// Topic of executed-command reports published by an actor mote.
  [[nodiscard]] static std::string report_topic(const NodeId& actor);

  /// Publishes a payload from `src`: the payload travels src -> broker ->
  /// each subscriber. `src` must be linked to the broker.
  void publish(const NodeId& src, Payload payload);

  /// Attaches a sharded detection runtime: every entity that reaches the
  /// broker is ingested into it (stamped with the simulator's current
  /// time) instead of requiring a single subscribing engine to keep up.
  /// EntityBatch payloads — WSN-internal framing that topic fan-out
  /// drops — are forwarded through the runtime's batched ingest, so relay
  /// aggregation feeds detection without unbatching.
  ///
  /// With `forward` set, instances the runtime merges out — the full
  /// cascade closure when RuntimeOptions::cascade is on, provenance
  /// intact — are fanned out to their topics' subscribers (CCUs,
  /// db::DatabaseServer, ...) like any published entity, except they are
  /// *not* re-ingested (the runtime already cascaded them internally).
  /// Merging is asynchronous, so the broker forwards opportunistically on
  /// each delivery; call drain_runtime() at quiescence for the tail.
  /// Forwarding consumes the runtime's merged stream (the broker polls
  /// it), so it is opt-in: with `forward` false (the default, and the
  /// pre-existing contract) the caller collects detections via
  /// poll()/flush() on the runtime itself. The runtime must outlive the
  /// broker.
  void attach_runtime(runtime::ShardedEngineRuntime& rt, bool forward = false) {
    runtime_ = &rt;
    forward_runtime_ = forward;
  }

  /// Blocks until the attached runtime has processed every ingested
  /// arrival, then fans the remaining merged instances out to their
  /// subscribers. Returns the number of instances forwarded. No-op
  /// without an attached (forwarding) runtime.
  std::size_t drain_runtime();

  [[nodiscard]] std::size_t subscriber_count(const std::string& topic) const;
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t fanned_out() const { return fanned_out_; }

 private:
  void on_message(const Message& msg);
  void fan_out(const Message& msg);
  /// Wraps a runtime-merged instance as an entity from the broker itself
  /// and fans it out to subscribers (no re-ingestion).
  void forward_instance(core::EventInstance inst);

  struct Subscription {
    NodeId node;
    bool reliable = false;
  };

  Network& network_;
  NodeId id_;
  std::unique_ptr<ReliableEndpoint> endpoint_;  ///< set iff Options::reliable
  runtime::ShardedEngineRuntime* runtime_ = nullptr;
  bool forward_runtime_ = false;
  std::unordered_map<std::string, std::vector<Subscription>> subscribers_;
  std::uint64_t published_ = 0;
  std::uint64_t fanned_out_ = 0;
};

}  // namespace stem::net
