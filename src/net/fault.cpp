#include "net/fault.hpp"

namespace stem::net {

FaultPlan::Decision FaultPlan::decide(const NodeId& from, const NodeId& to,
                                      time_model::TimePoint now) {
  Decision d;
  const auto it = find_link(from, to);
  if (it == faults_.end()) return d;
  LinkState& state = it->second;
  const LinkFault& fault = state.fault;
  ++state.sends;

  for (const auto& window : fault.partitions) {
    if (now >= window.from && now < window.until) {
      d.drop = true;
      return d;
    }
  }
  if (fault.drop_every_n > 0 && state.sends % fault.drop_every_n == 0) {
    d.drop = true;
    return d;
  }
  if (fault.drop_prob > 0.0 && rng_.chance(fault.drop_prob)) {
    d.drop = true;
    return d;
  }
  if (fault.duplicate_prob > 0.0 && rng_.chance(fault.duplicate_prob)) d.duplicate = true;
  if (fault.reorder_jitter > time_model::Duration::zero()) {
    d.extra_delay = time_model::Duration(static_cast<time_model::Tick>(
        rng_.uniform(0.0, static_cast<double>(fault.reorder_jitter.ticks()))));
  }
  return d;
}

bool FaultPlan::node_down(const NodeId& id, time_model::TimePoint now) const {
  const auto it = node_faults_.find(id.value());
  if (it == node_faults_.end()) return false;
  return now >= it->second.crash_at && now < it->second.heal_at;
}

}  // namespace stem::net
