#include "net/broker.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "runtime/sharded_runtime.hpp"

namespace stem::net {

std::ostream& operator<<(std::ostream& os, const Command& cmd) {
  return os << "cmd{" << cmd.target << " " << cmd.verb << " " << cmd.args << " caused-by "
            << cmd.cause << "}";
}

Broker::Broker(Network& network, NodeId id, Options options)
    : network_(network), id_(std::move(id)) {
  if (options.reliable) {
    endpoint_ = std::make_unique<ReliableEndpoint>(
        network_, id_, [this](const Message& msg) { on_message(msg); }, options.session,
        options.seed);
  } else {
    network_.register_node(id_, [this](const Message& msg) { on_message(msg); });
  }
}

void Broker::subscribe(const std::string& topic, const NodeId& subscriber, bool reliable) {
  if (reliable && endpoint_ == nullptr) {
    throw std::logic_error("Broker: reliable subscription requires Options::reliable");
  }
  auto& subs = subscribers_[topic];
  const auto it = std::find_if(subs.begin(), subs.end(),
                               [&](const Subscription& s) { return s.node == subscriber; });
  if (it == subs.end()) subs.push_back(Subscription{subscriber, reliable});
}

std::string Broker::topic_of(const core::Entity& entity) {
  if (entity.is_observation()) return "obs:" + entity.observation().sensor.value();
  return entity.instance().key.event.value();
}

std::string Broker::command_topic(const NodeId& actor) { return "cmd:" + actor.value(); }

std::string Broker::report_topic(const NodeId& actor) { return "report:" + actor.value(); }

void Broker::publish(const NodeId& src, Payload payload) {
  Message msg;
  msg.src = src;
  msg.dst = id_;
  msg.payload = std::move(payload);
  network_.send(std::move(msg));
}

void Broker::on_message(const Message& msg) {
  if (const auto* sub = std::get_if<Subscribe>(&msg.payload)) {
    subscribe(sub->topic, sub->subscriber);
    return;
  }
  ++published_;
  if (runtime_ != nullptr) {
    // Route entities into the attached sharded runtime. Observation time
    // is the broker's receipt time — the same `now` a subscribing
    // observer would use when the network hands it the message.
    const time_model::TimePoint now = network_.simulator().now();
    if (const auto* entity = std::get_if<core::Entity>(&msg.payload)) {
      runtime_->ingest(*entity, now);
    } else if (const auto* batch = std::get_if<EntityBatch>(&msg.payload)) {
      runtime_->ingest_batch(batch->entities, now);
    }
    if (forward_runtime_) {
      // Opportunistic pump: whatever the runtime has merged by now (the
      // full cascade closure per arrival in cascade mode) fans out to
      // subscribers with provenance intact; drain_runtime() flushes the
      // asynchronous tail.
      for (core::EventInstance& inst : runtime_->poll()) forward_instance(std::move(inst));
    }
  }
  fan_out(msg);
}

std::size_t Broker::drain_runtime() {
  if (runtime_ == nullptr || !forward_runtime_) return 0;
  std::size_t n = 0;
  for (core::EventInstance& inst : runtime_->flush()) {
    forward_instance(std::move(inst));
    ++n;
  }
  return n;
}

void Broker::forward_instance(core::EventInstance inst) {
  // From the broker itself: fan-out only — re-ingesting would double-run
  // the cascade the runtime already resolved.
  Message msg;
  msg.src = id_;
  msg.dst = id_;
  msg.payload = core::Entity(std::move(inst));
  fan_out(msg);
}

void Broker::fan_out(const Message& msg) {
  std::string topic;
  if (std::holds_alternative<EntityBatch>(msg.payload)) {
    // Batches are WSN-internal framing; brokers route individual
    // instances, so a stray batch is dropped rather than misrouted.
    return;
  }
  if (const auto* cmd = std::get_if<Command>(&msg.payload)) {
    topic = cmd->kind == Command::Kind::kReport ? report_topic(cmd->target)
                                                : command_topic(cmd->target);
  } else {
    topic = topic_of(std::get<core::Entity>(msg.payload));
  }
  const auto it = subscribers_.find(topic);
  if (it == subscribers_.end()) return;
  for (const Subscription& sub : it->second) {
    if (sub.node == msg.src) continue;  // don't echo to the publisher
    if (sub.reliable) {
      endpoint_->send(sub.node, msg.payload);
    } else {
      Message out;
      out.src = id_;
      out.dst = sub.node;
      out.payload = msg.payload;
      out.hops = msg.hops + 1;
      network_.send(std::move(out));
    }
    ++fanned_out_;
  }
}

std::size_t Broker::subscriber_count(const std::string& topic) const {
  const auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

}  // namespace stem::net
