#include "net/reliable.hpp"

#include <algorithm>
#include <utility>

namespace stem::net {

ReliableEndpoint::ReliableEndpoint(Network& network, NodeId id, Network::Handler upper,
                                   Options options, std::uint64_t seed)
    : network_(network),
      id_(std::move(id)),
      upper_(std::move(upper)),
      options_(options),
      rng_(seed) {
  network_.register_node(id_, [this](const Message& msg) { on_message(msg); });
}

ReliableEndpoint::~ReliableEndpoint() {
  for (auto& [dst, session] : send_sessions_) {
    if (session.timer_armed) network_.simulator().cancel(session.timer);
  }
}

void ReliableEndpoint::send(const NodeId& dst, Payload payload, std::size_t bytes) {
  SendSession& session = send_sessions_[dst.value()];
  if (session.unacked.empty() && !session.timer_armed) session.rto = options_.initial_rto;

  Message frame;
  frame.src = id_;
  frame.dst = dst;
  frame.payload = std::move(payload);
  frame.bytes = bytes != 0 ? bytes : estimate_size(frame.payload);
  frame.kind = FrameKind::kData;
  frame.seq = session.next_seq++;

  session.unacked.emplace(frame.seq, frame);
  ++stats_.data_sent;
  network_.send(std::move(frame));
  if (!session.timer_armed) arm_timer(dst, session);
}

std::uint64_t ReliableEndpoint::in_flight() const {
  std::uint64_t n = 0;
  for (const auto& [dst, session] : send_sessions_) n += session.unacked.size();
  return n;
}

void ReliableEndpoint::on_message(const Message& msg) {
  switch (msg.kind) {
    case FrameKind::kData:
      on_data(msg);
      break;
    case FrameKind::kAck:
      on_ack(msg);
      break;
    case FrameKind::kPlain:
      if (upper_) upper_(msg);
      break;
  }
}

void ReliableEndpoint::on_data(const Message& msg) {
  RecvSession& session = recv_sessions_[msg.src.value()];
  const bool duplicate =
      msg.seq < session.next_expected || session.out_of_order.contains(msg.seq);
  if (duplicate) {
    ++stats_.duplicates_suppressed;
    network_.note_duplicate_suppressed(msg.src, id_);
  } else {
    session.out_of_order.emplace(msg.seq, msg);
    auto next = session.out_of_order.find(session.next_expected);
    while (next != session.out_of_order.end()) {
      ++session.next_expected;
      ++stats_.delivered;
      if (upper_) upper_(next->second);
      session.out_of_order.erase(next);
      next = session.out_of_order.find(session.next_expected);
    }
  }
  // Every data frame — duplicate or not — is (re-)acked cumulatively, so a
  // lost ack is repaired by the retransmission it provokes.
  send_ack(msg.src, session.next_expected - 1);
}

void ReliableEndpoint::on_ack(const Message& msg) {
  const auto it = send_sessions_.find(msg.src.value());
  if (it == send_sessions_.end()) return;
  SendSession& session = it->second;
  const auto first_unacked = session.unacked.begin();
  const bool progress =
      first_unacked != session.unacked.end() && first_unacked->first <= msg.ack;
  if (!progress) return;
  session.unacked.erase(session.unacked.begin(), session.unacked.upper_bound(msg.ack));
  session.rto = options_.initial_rto;
  session.timeouts = 0;
  if (session.timer_armed) {
    network_.simulator().cancel(session.timer);
    session.timer_armed = false;
  }
  if (!session.unacked.empty()) arm_timer(msg.src, session);
}

void ReliableEndpoint::arm_timer(const NodeId& dst, SendSession& session) {
  time_model::Duration wait = session.rto;
  if (options_.rto_jitter > time_model::Duration::zero()) {
    wait += time_model::Duration(static_cast<time_model::Tick>(
        rng_.uniform(0.0, static_cast<double>(options_.rto_jitter.ticks()))));
  }
  session.timer = network_.simulator().schedule_after(
      wait, [this, dst_name = dst.value()] { on_timeout(NodeId(dst_name)); });
  session.timer_armed = true;
}

void ReliableEndpoint::on_timeout(const NodeId& dst) {
  SendSession& session = send_sessions_[dst.value()];
  session.timer_armed = false;
  if (session.unacked.empty()) return;

  ++session.timeouts;
  if (options_.max_retries > 0 && session.timeouts > options_.max_retries) {
    // Permanent partition (as far as this sender can tell): degrade
    // observably instead of retrying forever.
    stats_.gave_up += session.unacked.size();
    session.unacked.clear();
    return;
  }

  for (const auto& [seq, frame] : session.unacked) {
    ++stats_.retransmits;
    network_.note_retransmit(id_, dst);
    network_.send(frame);
  }
  session.rto = std::min(
      time_model::Duration(static_cast<time_model::Tick>(
          static_cast<double>(session.rto.ticks()) * options_.backoff)),
      options_.max_rto);
  arm_timer(dst, session);
}

void ReliableEndpoint::send_ack(const NodeId& to, std::uint64_t ack) {
  Message frame;
  frame.src = id_;
  frame.dst = to;
  frame.payload = Subscribe{};  // smallest payload; ignored by the receiver
  frame.kind = FrameKind::kAck;
  frame.ack = ack;
  ++stats_.acks_sent;
  network_.send(std::move(frame));
}

}  // namespace stem::net
