#include "net/network.hpp"

#include <stdexcept>

namespace stem::net {

namespace {
std::size_t attrs_size(const core::AttributeSet& attrs) {
  std::size_t n = 0;
  for (const auto& [name, value] : attrs) {
    n += 4 + name.size();
    if (const auto* s = std::get_if<std::string>(&value)) {
      n += s->size();
    } else {
      n += 8;
    }
  }
  return n;
}

std::size_t location_size(const geom::Location& loc) {
  if (loc.is_point()) return 16;
  return 16 * loc.as_field().size();
}
}  // namespace

namespace {
constexpr std::size_t kHeader = 24;  // ids, seq, layer, hops

std::size_t entity_body_size(const core::Entity& entity) {
  if (entity.is_observation()) {
    const auto& o = entity.observation();
    return 8 /*time*/ + location_size(o.location) + attrs_size(o.attributes) + 12 /*ids*/;
  }
  const auto& i = entity.instance();
  return 8 /*gen time*/ + 16 /*gen loc*/ + 16 /*est time*/ + location_size(i.est_location) +
         attrs_size(i.attributes) + 8 /*rho*/ + 8 * i.provenance.size() + 12 /*ids*/;
}
}  // namespace

std::size_t estimate_size(const Payload& payload) {
  if (const auto* sub = std::get_if<Subscribe>(&payload)) {
    return kHeader + sub->topic.size() + sub->subscriber.value().size();
  }
  if (const auto* cmd = std::get_if<Command>(&payload)) {
    return kHeader + cmd->verb.size() + attrs_size(cmd->args) + 16;
  }
  if (const auto* batch = std::get_if<EntityBatch>(&payload)) {
    // One shared header; each entity pays only its body.
    std::size_t n = kHeader;
    for (const auto& e : batch->entities) n += entity_body_size(e);
    return n;
  }
  return kHeader + entity_body_size(std::get<core::Entity>(payload));
}

void Network::register_node(NodeId id, Handler handler) {
  if (handlers_.contains(id)) {
    throw std::invalid_argument("Network: node '" + id.value() + "' already registered");
  }
  handlers_.emplace(std::move(id), std::move(handler));
}

void Network::connect(const NodeId& a, const NodeId& b, LinkSpec spec) {
  connect_directed(a, b, spec);
  connect_directed(b, a, spec);
}

void Network::connect_directed(const NodeId& a, const NodeId& b, LinkSpec spec) {
  if (!handlers_.contains(a) || !handlers_.contains(b)) {
    throw std::invalid_argument("Network: connect requires registered endpoints");
  }
  links_[LinkKey{a.value(), b.value()}] = spec;
}

bool Network::linked(const NodeId& a, const NodeId& b) const {
  return links_.contains(LinkKey{a.value(), b.value()});
}

bool Network::send(Message msg) {
  const auto link_it = links_.find(LinkKey{msg.src.value(), msg.dst.value()});
  if (link_it == links_.end()) {
    throw std::invalid_argument("Network: no link " + msg.src.value() + " -> " +
                                msg.dst.value());
  }
  if (msg.bytes == 0) msg.bytes = estimate_size(msg.payload);

  const LinkSpec& link = link_it->second;
  LinkCounters& lc = counters(msg.src, msg.dst);
  ++stats_.sent;
  ++lc.sent;
  stats_.bytes_sent += msg.bytes;

  const time_model::TimePoint now = sim_.now();
  FaultPlan::Decision verdict;
  if (fault_plan_ != nullptr) {
    if (fault_plan_->node_down(msg.src, now) || fault_plan_->node_down(msg.dst, now)) {
      ++stats_.dropped;
      ++lc.dropped;
      return false;
    }
    verdict = fault_plan_->decide(msg.src, msg.dst, now);
    if (verdict.drop) {
      ++stats_.dropped;
      ++lc.dropped;
      return false;
    }
  }
  if (link.loss_prob > 0.0 && rng_.chance(link.loss_prob)) {
    ++stats_.dropped;
    ++lc.dropped;
    return false;
  }

  // Each delivered copy (the original, plus an injected duplicate) rolls
  // its own jitter, so duplicates can arrive in either order.
  const int copies = verdict.duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    time_model::Duration delay = link.base_latency + verdict.extra_delay;
    if (link.jitter > time_model::Duration::zero()) {
      delay += time_model::Duration(static_cast<time_model::Tick>(
          rng_.uniform(0.0, static_cast<double>(link.jitter.ticks()))));
    }
    if (link.bytes_per_ms > 0.0) {
      delay += time_model::Duration(static_cast<time_model::Tick>(
          static_cast<double>(msg.bytes) / link.bytes_per_ms * 1000.0));
    }
    sim_.schedule_after(delay, [this, m = msg]() mutable { deliver(m); });
  }
  return true;
}

void Network::deliver(const Message& m) {
  // A node that crashed while the message was in flight receives nothing.
  if (fault_plan_ != nullptr && fault_plan_->node_down(m.dst, sim_.now())) {
    ++stats_.dropped;
    ++counters(m.src, m.dst).dropped;
    return;
  }
  // Handler lookup is deferred to delivery time; the node must still exist.
  const auto it = handlers_.find(m.dst);
  if (it == handlers_.end()) return;
  ++stats_.delivered;
  ++counters(m.src, m.dst).delivered;
  it->second(m);
}

void Network::note_retransmit(const NodeId& from, const NodeId& to) {
  ++stats_.retransmitted;
  ++counters(from, to).retransmitted;
}

void Network::note_duplicate_suppressed(const NodeId& from, const NodeId& to) {
  ++stats_.duplicates_suppressed;
  ++counters(from, to).duplicates_suppressed;
}

}  // namespace stem::net
