#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "time/time_point.hpp"

namespace stem::net {

/// Deterministic per-link fault programming. Every knob composes: a send
/// first consults the partition windows and the counted drop, then the
/// seeded probabilistic drop, then duplication and reordering jitter.
struct LinkFault {
  /// Drop every Nth message on the link (1-based count; 0 disables).
  /// Deterministic: the plan counts sends per link.
  std::uint32_t drop_every_n = 0;
  /// Probabilistic drop, rolled on the plan's own seeded stream (the
  /// link's `loss_prob` still applies independently in Network).
  double drop_prob = 0.0;
  /// Probability a delivered message is duplicated (delivered twice).
  double duplicate_prob = 0.0;
  /// Extra uniform delay U(0, reorder_jitter) added per delivery; large
  /// values relative to the link latency reorder messages.
  time_model::Duration reorder_jitter = time_model::Duration::zero();
  /// Hard partition windows: sends during [from, until) are dropped.
  struct Window {
    time_model::TimePoint from;
    time_model::TimePoint until;
  };
  std::vector<Window> partitions;
};

/// Deterministic node faults: a crashed node neither sends nor receives
/// until (optionally) healed.
struct NodeFault {
  time_model::TimePoint crash_at = time_model::TimePoint::max();
  time_model::TimePoint heal_at = time_model::TimePoint::max();
};

/// A seeded, reproducible failure scenario. Attach to a Network with
/// `Network::set_fault_plan`; every decision (counted drops, probabilistic
/// drops, duplicates, reorder jitter) is a pure function of the seed and
/// the simulator-ordered sequence of sends, so any failure run replays
/// exactly.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  FaultPlan& on_link(const NodeId& from, const NodeId& to, LinkFault fault) {
    faults_[key(from, to)].fault = std::move(fault);
    return *this;
  }
  /// Applies the fault in both directions.
  FaultPlan& on_link_both(const NodeId& a, const NodeId& b, const LinkFault& fault) {
    on_link(a, b, fault);
    return on_link(b, a, fault);
  }
  FaultPlan& on_node(const NodeId& id, NodeFault fault) {
    node_faults_[id.value()] = fault;
    return *this;
  }

  /// The plan's verdict for one send attempt.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    time_model::Duration extra_delay = time_model::Duration::zero();
  };

  /// Consulted by Network::send for each message on a link (mutates the
  /// plan's per-link counters and RNG stream; call order defines the
  /// deterministic schedule).
  Decision decide(const NodeId& from, const NodeId& to, time_model::TimePoint now);

  /// True if `id` is crashed (and not yet healed) at `now`. Checked at
  /// both send and delivery time.
  [[nodiscard]] bool node_down(const NodeId& id, time_model::TimePoint now) const;

 private:
  static std::string key(const NodeId& from, const NodeId& to) {
    return from.value() + "\x1f" + to.value();
  }

  struct LinkState {
    LinkFault fault;
    std::uint64_t sends = 0;
  };

  sim::Rng rng_;
  std::unordered_map<std::string, LinkState> faults_;
  std::unordered_map<std::string, NodeFault> node_faults_;

  std::unordered_map<std::string, LinkState>::iterator find_link(const NodeId& from,
                                                                 const NodeId& to) {
    return faults_.find(key(from, to));
  }
};

}  // namespace stem::net
