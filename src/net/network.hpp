#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace stem::net {

/// Point-to-point link characteristics.
struct LinkSpec {
  time_model::Duration base_latency = time_model::milliseconds(2);
  /// Uniform jitter added on top: U(0, jitter).
  time_model::Duration jitter = time_model::milliseconds(1);
  /// Probability a message is silently lost.
  double loss_prob = 0.0;
  /// Serialization rate; 0 disables the size-dependent term.
  double bytes_per_ms = 250.0;
};

namespace detail {
/// Directed link identity. Exposed (with its hash) so tests can assert the
/// combiner does not collide on trivial permutations.
struct LinkKey {
  std::string from, to;
  bool operator==(const LinkKey&) const = default;
};
struct LinkKeyHash {
  /// Boost-style hash_combine: mixes the incoming hash through the golden
  /// ratio so that (a,b) and (b,a) — or any multiplier-absorbing pair —
  /// land in different buckets.
  static std::size_t combine(std::size_t seed, std::size_t v) {
    return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  }
  std::size_t operator()(const LinkKey& k) const {
    return combine(std::hash<std::string>{}(k.from), std::hash<std::string>{}(k.to));
  }
};
}  // namespace detail

/// Per-link delivery counters: failure tests assert on causes (which link
/// dropped, who retransmitted) rather than aggregate totals.
struct LinkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t duplicates_suppressed = 0;
};

/// Aggregate traffic counters (experiment E5 reads the totals; the
/// fault-tolerance suites read `per_link`).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmitted = 0;            ///< reported by ReliableEndpoint
  std::uint64_t duplicates_suppressed = 0;    ///< reported by ReliableEndpoint
  std::map<std::pair<std::string, std::string>, LinkCounters> per_link;

  /// Counters for the directed link from -> to (zeros if never used).
  [[nodiscard]] const LinkCounters& link(const NodeId& from, const NodeId& to) const {
    static const LinkCounters kZero{};
    const auto it = per_link.find({from.value(), to.value()});
    return it == per_link.end() ? kZero : it->second;
  }
};

/// The CPS network of Fig. 1: connects motes, sinks, dispatch nodes, CCUs,
/// and database servers over configured links, delivering messages through
/// the shared discrete-event simulator with per-link latency, jitter, and
/// loss.
///
/// The network is single-hop: it delivers only across explicit links.
/// Multi-hop WSN routing is implemented by the motes themselves (tree
/// routing in stem::wsn), mirroring the paper's architecture where motes
/// "serve as repeaters to relay and aggregate packets".
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& simulator, sim::Rng rng) : sim_(simulator), rng_(std::move(rng)) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node and its receive handler. Throws std::invalid_argument
  /// on duplicate registration.
  void register_node(NodeId id, Handler handler);
  [[nodiscard]] bool has_node(const NodeId& id) const { return handlers_.contains(id); }

  /// Creates a bidirectional link between two registered nodes.
  void connect(const NodeId& a, const NodeId& b, LinkSpec spec);
  /// Creates a one-way link a -> b.
  void connect_directed(const NodeId& a, const NodeId& b, LinkSpec spec);

  [[nodiscard]] bool linked(const NodeId& a, const NodeId& b) const;

  /// Sends `msg` from msg.src to msg.dst across their direct link. If
  /// msg.bytes is 0 it is filled from estimate_size(). Throws
  /// std::invalid_argument if no link exists. Returns false if the message
  /// was dropped by the loss model or the fault plan (callers cannot know
  /// this in a real deployment; the return value exists for tests —
  /// ReliableEndpoint exists precisely because senders can't see drops).
  bool send(Message msg);

  /// Attaches a deterministic failure scenario (non-owning; the plan must
  /// outlive the network or be cleared with nullptr). Consulted on every
  /// send and delivery.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  /// Reliable-layer accounting hooks (totals + per-link).
  void note_retransmit(const NodeId& from, const NodeId& to);
  void note_duplicate_suppressed(const NodeId& from, const NodeId& to);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  using LinkKey = detail::LinkKey;
  using LinkKeyHash = detail::LinkKeyHash;

  LinkCounters& counters(const NodeId& from, const NodeId& to) {
    return stats_.per_link[{from.value(), to.value()}];
  }
  void deliver(const Message& m);

  sim::Simulator& sim_;
  sim::Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<LinkKey, LinkSpec, LinkKeyHash> links_;
  NetworkStats stats_;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace stem::net
