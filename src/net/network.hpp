#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace stem::net {

/// Point-to-point link characteristics.
struct LinkSpec {
  time_model::Duration base_latency = time_model::milliseconds(2);
  /// Uniform jitter added on top: U(0, jitter).
  time_model::Duration jitter = time_model::milliseconds(1);
  /// Probability a message is silently lost.
  double loss_prob = 0.0;
  /// Serialization rate; 0 disables the size-dependent term.
  double bytes_per_ms = 250.0;
};

/// Aggregate traffic counters (experiment E5 reads these).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_sent = 0;
};

/// The CPS network of Fig. 1: connects motes, sinks, dispatch nodes, CCUs,
/// and database servers over configured links, delivering messages through
/// the shared discrete-event simulator with per-link latency, jitter, and
/// loss.
///
/// The network is single-hop: it delivers only across explicit links.
/// Multi-hop WSN routing is implemented by the motes themselves (tree
/// routing in stem::wsn), mirroring the paper's architecture where motes
/// "serve as repeaters to relay and aggregate packets".
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& simulator, sim::Rng rng) : sim_(simulator), rng_(std::move(rng)) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node and its receive handler. Throws std::invalid_argument
  /// on duplicate registration.
  void register_node(NodeId id, Handler handler);
  [[nodiscard]] bool has_node(const NodeId& id) const { return handlers_.contains(id); }

  /// Creates a bidirectional link between two registered nodes.
  void connect(const NodeId& a, const NodeId& b, LinkSpec spec);
  /// Creates a one-way link a -> b.
  void connect_directed(const NodeId& a, const NodeId& b, LinkSpec spec);

  [[nodiscard]] bool linked(const NodeId& a, const NodeId& b) const;

  /// Sends `msg` from msg.src to msg.dst across their direct link. If
  /// msg.bytes is 0 it is filled from estimate_size(). Throws
  /// std::invalid_argument if no link exists. Returns false if the message
  /// was dropped by the loss model (callers cannot know this in a real
  /// deployment; the return value exists for tests).
  bool send(Message msg);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct LinkKey {
    std::string from, to;
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const {
      return std::hash<std::string>{}(k.from) * 31 ^ std::hash<std::string>{}(k.to);
    }
  };

  sim::Simulator& sim_;
  sim::Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<LinkKey, LinkSpec, LinkKeyHash> links_;
  NetworkStats stats_;
};

}  // namespace stem::net
