#pragma once

#include <memory>
#include <optional>

#include "analysis/edl.hpp"
#include "scenario/deployment.hpp"
#include "sensing/phenomena.hpp"
#include "sensing/physical_event.hpp"

namespace stem::scenario {

/// The paper's running example (Sec. 1): "user A is nearby window B".
///
/// A user walks through a building instrumented with range-sensing motes.
/// Each mote abstracts the user as a *range measurement* (sensor event);
/// the sink fuses >= 3 ranges into the user's *location* (cyber-physical
/// event) and raises NEARBY_WINDOW when the estimated position is inside
/// the window zone; the CCU turns that into the USER_AT_WINDOW cyber event
/// and commands the window actor to close. Every event definition is
/// written in the event language (see definitions in smart_building.cpp).
struct SmartBuildingConfig {
  DeploymentConfig deployment{};
  /// The window zone (window B plus its "nearby" margin).
  geom::Point window_lo{70, 70};
  geom::Point window_hi{90, 90};
  /// User path and speed.
  std::vector<geom::Point> waypoints{{5, 5}, {80, 80}, {95, 20}};
  double user_speed = 2.0;  // m/s
  double sensor_max_range = 60.0;
  double range_noise_sigma = 0.3;
  time_model::Duration horizon = time_model::minutes(2);
};

struct SmartBuildingResult {
  /// Ground truth: when the user actually entered the window zone.
  std::optional<time_model::TimePoint> true_entry;
  /// First NEARBY_WINDOW cyber-physical detection at the sink.
  std::optional<time_model::TimePoint> first_detection;
  /// First close_window actuation.
  std::optional<time_model::TimePoint> window_closed;
  std::size_t location_estimates = 0;
  std::size_t nearby_detections = 0;
  std::size_t cyber_events = 0;
  std::size_t commands = 0;
  double mean_location_error_m = 0.0;
  net::NetworkStats network;
  /// End-to-end EDL in ms (entry -> cyber event), if both occurred.
  [[nodiscard]] std::optional<double> edl_ms() const;
};

/// Builds, runs, and scores the smart-building scenario.
class SmartBuilding {
 public:
  explicit SmartBuilding(SmartBuildingConfig config);

  /// Runs to the horizon and returns the scored result.
  SmartBuildingResult run();

  [[nodiscard]] Deployment& deployment() { return *deployment_; }
  [[nodiscard]] const sensing::MovingObject& user() const { return *user_; }

 private:
  SmartBuildingConfig config_;
  std::unique_ptr<Deployment> deployment_;
  std::shared_ptr<sensing::MovingObject> user_;
  SmartBuildingResult result_;
};

}  // namespace stem::scenario
