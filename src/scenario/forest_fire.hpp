#pragma once

#include <memory>
#include <optional>

#include "scenario/deployment.hpp"
#include "sensing/phenomena.hpp"

namespace stem::scenario {

/// Field-event scenario: a fire ignites and spreads radially; heat-sensing
/// motes detect HOT sensor events; the sink joins three spatially close
/// HOT events into a CP_FIRE *field event* whose estimated footprint is
/// the convex hull of the contributing motes (paper Sec. 4.2: "a field
/// occurrence location is made of at least 2 or more point events"); the
/// CCU raises FIRE_ALARM and commands the sprinkler actor.
struct ForestFireConfig {
  DeploymentConfig deployment{};
  geom::Point ignition{50, 50};
  time_model::Duration ignition_after = time_model::seconds(10);
  double spread_speed = 1.5;  // m/s
  double hot_threshold = 80.0;
  double sensor_noise_sigma = 1.0;
  time_model::Duration horizon = time_model::minutes(2);
};

struct ForestFireResult {
  time_model::TimePoint ignition_time;
  std::optional<time_model::TimePoint> first_cp_fire;   ///< sink detection
  std::optional<time_model::TimePoint> first_alarm;     ///< CCU cyber event
  std::optional<time_model::TimePoint> suppression;     ///< actuation
  std::size_t hot_events = 0;
  std::size_t cp_fire_events = 0;
  std::size_t alarms = 0;
  /// Footprint accuracy at first detection: estimated hull area / true
  /// burning-disk area (1.0 = exact; < 1 means under-estimate).
  std::optional<double> footprint_ratio;
  /// Intersection-over-union of the estimated hull vs the true burning
  /// disk at first detection (1.0 = perfect footprint).
  std::optional<double> footprint_iou;
  net::NetworkStats network;

  [[nodiscard]] std::optional<double> detection_latency_ms() const {
    if (!first_cp_fire.has_value()) return std::nullopt;
    return static_cast<double>((*first_cp_fire - ignition_time).ticks()) / 1000.0;
  }
};

class ForestFire {
 public:
  explicit ForestFire(ForestFireConfig config);

  ForestFireResult run();

  [[nodiscard]] Deployment& deployment() { return *deployment_; }
  [[nodiscard]] const sensing::SpreadingFire& fire() const { return *fire_; }

 private:
  ForestFireConfig config_;
  std::unique_ptr<Deployment> deployment_;
  std::shared_ptr<sensing::SpreadingFire> fire_;
  ForestFireResult result_;
};

}  // namespace stem::scenario
