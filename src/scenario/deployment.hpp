#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cps/ccu.hpp"
#include "db/event_store.hpp"
#include "net/broker.hpp"
#include "net/network.hpp"
#include "wsn/actor.hpp"
#include "wsn/mote.hpp"
#include "wsn/sink.hpp"
#include "wsn/topology.hpp"

namespace stem::scenario {

/// Parameters of a full Fig.-1 deployment.
struct DeploymentConfig {
  wsn::TopologyConfig topology{};
  /// Radio link between motes / mote->sink.
  net::LinkSpec wsn_link{time_model::milliseconds(3), time_model::milliseconds(2), 0.0, 250.0};
  /// Backbone link sink/CCU/db/dispatch <-> broker.
  net::LinkSpec cps_link{time_model::milliseconds(2), time_model::milliseconds(1), 0.0, 2000.0};
  time_model::Duration sampling_period = time_model::seconds(1);
  time_model::Duration mote_proc = time_model::milliseconds(5);
  time_model::Duration sink_proc = time_model::milliseconds(10);
  time_model::Duration ccu_proc = time_model::milliseconds(20);
  /// Centralized-baseline mode: motes ship raw observations (E5).
  bool forward_raw = false;
  /// Sinks re-feed their own instances (multi-level central evaluation).
  bool sink_cascade = false;
  /// Per-mote upstream aggregation window (0 = send per event). See
  /// SensorMote::Config::aggregate_window and experiment E12.
  time_model::Duration aggregate_window = time_model::Duration::zero();
  std::uint64_t seed = 1;
};

/// Builds and owns a complete CPS deployment per the paper's architecture
/// (Fig. 1): sensor motes wired into a routing tree toward sink nodes, a
/// pub/sub broker backbone, one CPS control unit, one database server, and
/// optional actor motes behind a dispatch node.
///
/// The deployment performs only the *wiring*; scenario code registers
/// event definitions on motes/sinks/CCU and phenomena on the sensors.
class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] net::Broker& broker() { return broker_; }
  [[nodiscard]] const wsn::Topology& topology() const { return topology_; }
  [[nodiscard]] std::vector<std::unique_ptr<wsn::SensorMote>>& motes() { return motes_; }
  [[nodiscard]] std::vector<std::unique_ptr<wsn::SinkNode>>& sinks() { return sinks_; }
  [[nodiscard]] cps::ControlUnit& ccu() { return *ccu_; }
  [[nodiscard]] db::DatabaseServer& database() { return *database_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

  /// Adds an actor mote (with its actuation callback) behind the shared
  /// dispatch node. Returns the actor for inspection.
  wsn::ActorMote& add_actor(
      net::NodeId id, geom::Point position,
      std::function<void(const net::Command&, time_model::TimePoint)> actuate = {});

  /// Applies `fn` to every connected mote.
  void for_each_mote(const std::function<void(wsn::SensorMote&)>& fn);

  /// Starts mote sampling loops and runs the simulation to `until`.
  void run_until(time_model::TimePoint until);

  /// Convenience ids.
  [[nodiscard]] static net::NodeId broker_id() { return net::NodeId("BROKER"); }
  [[nodiscard]] static net::NodeId ccu_id() { return net::NodeId("CCU1"); }
  [[nodiscard]] static net::NodeId db_id() { return net::NodeId("DB1"); }
  [[nodiscard]] static net::NodeId dispatch_id() { return net::NodeId("DISPATCH1"); }
  [[nodiscard]] static net::NodeId mote_id(std::size_t i) {
    return net::NodeId("MT" + std::to_string(i));
  }
  [[nodiscard]] static net::NodeId sink_id(std::size_t i) {
    return net::NodeId("SINK" + std::to_string(i));
  }

 private:
  DeploymentConfig config_;
  sim::Simulator simulator_;
  net::Network network_;
  net::Broker broker_;
  wsn::Topology topology_;
  std::vector<std::unique_ptr<wsn::SensorMote>> motes_;
  std::vector<std::unique_ptr<wsn::SinkNode>> sinks_;
  std::unique_ptr<cps::ControlUnit> ccu_;
  std::unique_ptr<db::DatabaseServer> database_;
  std::unique_ptr<wsn::DispatchNode> dispatch_;
  std::vector<std::unique_ptr<wsn::ActorMote>> actors_;
};

}  // namespace stem::scenario
