#include "scenario/deployment.hpp"

namespace stem::scenario {

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)),
      network_(simulator_, sim::Rng(config_.seed).fork("network")),
      broker_(network_, broker_id()),
      topology_(wsn::build_topology(config_.topology)) {
  const sim::Rng root(config_.seed);

  // Sinks first: motes link to them.
  for (std::size_t s = 0; s < topology_.sink_positions.size(); ++s) {
    wsn::SinkNode::Config scfg;
    scfg.id = sink_id(s);
    scfg.position = topology_.sink_positions[s];
    scfg.proc_delay = config_.sink_proc;
    scfg.cascade = config_.sink_cascade;
    sinks_.push_back(std::make_unique<wsn::SinkNode>(network_, &broker_, scfg));
    network_.connect(scfg.id, broker_id(), config_.cps_link);
  }

  // Motes and the routing tree.
  for (std::size_t i = 0; i < topology_.mote_positions.size(); ++i) {
    wsn::SensorMote::Config mcfg;
    mcfg.id = mote_id(i);
    mcfg.position = topology_.mote_positions[i];
    mcfg.sampling_period = config_.sampling_period;
    mcfg.proc_delay = config_.mote_proc;
    mcfg.forward_raw = config_.forward_raw;
    mcfg.aggregate_window = config_.aggregate_window;
    motes_.push_back(std::make_unique<wsn::SensorMote>(
        network_, mcfg, root.fork("mote" + std::to_string(i))));
  }
  for (std::size_t i = 0; i < topology_.mote_positions.size(); ++i) {
    if (topology_.parent_sink[i].has_value()) {
      const net::NodeId parent = sink_id(*topology_.parent_sink[i]);
      network_.connect(mote_id(i), parent, config_.wsn_link);
      motes_[i]->set_parent(parent);
    } else if (topology_.parent_mote[i].has_value()) {
      const net::NodeId parent = mote_id(*topology_.parent_mote[i]);
      network_.connect(mote_id(i), parent, config_.wsn_link);
      motes_[i]->set_parent(parent);
    }
    // Disconnected motes keep sampling but cannot report.
  }

  // CCU.
  cps::ControlUnit::Config ccfg;
  ccfg.id = ccu_id();
  ccfg.position = {config_.topology.width / 2, config_.topology.height / 2};
  ccfg.proc_delay = config_.ccu_proc;
  ccu_ = std::make_unique<cps::ControlUnit>(network_, broker_, ccfg);
  network_.connect(ccu_id(), broker_id(), config_.cps_link);

  // Database server.
  database_ = std::make_unique<db::DatabaseServer>(network_, broker_,
                                                   db::DatabaseServer::Config{db_id()});
  network_.connect(db_id(), broker_id(), config_.cps_link);

  // Dispatch node for the actuation path.
  wsn::DispatchNode::Config dcfg;
  dcfg.id = dispatch_id();
  dcfg.position = {config_.topology.width / 2, config_.topology.height / 2};
  dispatch_ = std::make_unique<wsn::DispatchNode>(network_, broker_, dcfg);
  network_.connect(dispatch_id(), broker_id(), config_.cps_link);
}

wsn::ActorMote& Deployment::add_actor(
    net::NodeId id, geom::Point position,
    std::function<void(const net::Command&, time_model::TimePoint)> actuate) {
  wsn::ActorMote::Config acfg;
  acfg.id = id;
  acfg.position = position;
  actors_.push_back(
      std::make_unique<wsn::ActorMote>(network_, &broker_, acfg, std::move(actuate)));
  network_.connect(dispatch_id(), id, config_.wsn_link);
  network_.connect(id, broker_id(), config_.cps_link);
  dispatch_->serve(id);
  return *actors_.back();
}

void Deployment::for_each_mote(const std::function<void(wsn::SensorMote&)>& fn) {
  for (std::size_t i = 0; i < motes_.size(); ++i) {
    if (topology_.connected(i)) fn(*motes_[i]);
  }
}

void Deployment::run_until(time_model::TimePoint until) {
  for (auto& mote : motes_) mote->start(until);
  simulator_.run_until(until);
}

}  // namespace stem::scenario
