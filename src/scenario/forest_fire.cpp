#include "scenario/forest_fire.hpp"

#include "eventlang/parser.hpp"
#include "geom/clip.hpp"

namespace stem::scenario {

namespace {

std::string hot_spec(double threshold) {
  return "event HOT {\n"
         "  window: 2 s;\n"
         "  slot x = obs(SRheat);\n"
         "  when avg(value of x) > " +
         std::to_string(threshold) +
         ";\n"
         "  emit { attr value = avg(value of x); }\n"
         "}\n";
}

/// Three distinct HOT events within 40 m pairwise form a fire field; the
/// hull of their mote positions estimates the footprint. The distance > 0.5
/// terms force three *different* motes.
std::string cp_fire_spec(double threshold) {
  return "event CP_FIRE {\n"
         "  window: 4 s;\n"
         "  slot a = event(HOT);\n"
         "  slot b = event(HOT);\n"
         "  slot c = event(HOT);\n"
         "  when min(value of a, b, c) > " +
         std::to_string(threshold) +
         "\n"
         "   and distance(a, b) < 40 and distance(b, c) < 40 and distance(a, c) < 40\n"
         "   and distance(a, b) > 0.5 and distance(b, c) > 0.5 and distance(a, c) > 0.5;\n"
         "  emit {\n"
         "    time: span;\n"
         "    location: hull;\n"
         "    confidence: mean * 0.9;\n"
         "    attr value = avg(value of a, b, c);\n"
         "  }\n"
         "}\n";
}

constexpr const char* kAlarmSpec = R"(
event FIRE_ALARM {
  window: 10 s;
  slot f = event(CP_FIRE);
  when rho(f) >= 0.3 and avg(value of f) > 100;
  emit { confidence: mean; attr value = avg(value of f); }
}
)";

}  // namespace

ForestFire::ForestFire(ForestFireConfig config) : config_(std::move(config)) {
  deployment_ = std::make_unique<Deployment>(config_.deployment);
  result_.ignition_time = time_model::TimePoint::epoch() + config_.ignition_after;
  fire_ = std::make_shared<sensing::SpreadingFire>(config_.ignition, result_.ignition_time,
                                                   config_.spread_speed);

  const auto hot_def = eventlang::parse_event(hot_spec(config_.hot_threshold));
  deployment_->for_each_mote([&](wsn::SensorMote& mote) {
    mote.add_sensor(std::make_shared<sensing::ScalarFieldSensor>(
        core::SensorId("SRheat"), fire_, config_.sensor_noise_sigma));
    mote.add_definition(hot_def);
  });

  for (auto& sink : deployment_->sinks()) {
    sink->add_definition(eventlang::parse_event(cp_fire_spec(config_.hot_threshold)));
    sink->on_instance([this](const core::EventInstance& inst) {
      if (inst.key.event == core::EventTypeId("CP_FIRE")) {
        ++result_.cp_fire_events;
        if (!result_.first_cp_fire.has_value()) {
          result_.first_cp_fire = inst.gen_time;
          if (inst.est_location.is_field()) {
            const double est_area = inst.est_location.as_field().area();
            const auto truth = fire_->footprint(inst.est_time.end(), 64);
            if (truth.has_value() && truth->area() > 0.0) {
              result_.footprint_ratio = est_area / truth->area();
              result_.footprint_iou = geom::iou(inst.est_location.as_field(), *truth);
            }
          }
        }
      }
    });
  }

  deployment_->ccu().subscribe(core::EventTypeId("CP_FIRE"));
  deployment_->ccu().add_definition(eventlang::parse_event(kAlarmSpec));
  deployment_->ccu().add_rule(cps::ActionRule{
      core::EventTypeId("FIRE_ALARM"),
      [](const core::EventInstance& inst) -> std::optional<net::Command> {
        net::Command cmd;
        cmd.target = net::NodeId("AR_sprinkler");
        cmd.verb = "suppress";
        cmd.cause = inst.key;
        return cmd;
      }});
  deployment_->ccu().on_instance([this](const core::EventInstance& inst) {
    if (inst.key.event == core::EventTypeId("FIRE_ALARM")) {
      ++result_.alarms;
      if (!result_.first_alarm.has_value()) result_.first_alarm = inst.gen_time;
    }
  });

  deployment_->database().archive_topic("CP_FIRE");
  deployment_->database().archive_topic("FIRE_ALARM");

  deployment_->add_actor(net::NodeId("AR_sprinkler"), config_.ignition,
                         [this](const net::Command& cmd, time_model::TimePoint now) {
                           if (cmd.verb == "suppress" && !result_.suppression.has_value()) {
                             result_.suppression = now;
                           }
                         });
}

ForestFireResult ForestFire::run() {
  // Count HOT sensor events via mote stats after the run.
  deployment_->run_until(time_model::TimePoint::epoch() + config_.horizon);
  deployment_->for_each_mote(
      [this](wsn::SensorMote& mote) { result_.hot_events += mote.stats().events_emitted; });
  result_.network = deployment_->network().stats();
  return result_;
}

}  // namespace stem::scenario
