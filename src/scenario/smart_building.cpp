#include "scenario/smart_building.hpp"

#include <cmath>

#include "eventlang/parser.hpp"

namespace stem::scenario {

namespace {

/// Mote-level sensor event: each fresh range observation becomes a
/// RANGE_userA sensor event carrying the measured range.
constexpr const char* kRangeEventSpec = R"(
event RANGE_userA {
  window: 2 s;
  slot r = obs(SRrange);
  when min(range of r) >= 0.0;
  emit { attr range = avg(range of r); }
}
)";

/// Sink-level cyber-physical event: the fused user location lies inside
/// the window zone. The zone rectangle is formatted in at runtime.
std::string nearby_spec(geom::Point lo, geom::Point hi) {
  return "event NEARBY_WINDOW {\n"
         "  window: 5 s;\n"
         "  slot l = event(LOC_userA);\n"
         "  when loc(l) inside rect(" +
         std::to_string(lo.x) + ", " + std::to_string(lo.y) + ", " + std::to_string(hi.x) +
         ", " + std::to_string(hi.y) +
         ") and rho(l) >= 0.2;\n"
         "  emit { time: latest; location: centroid; confidence: mean; }\n"
         "}\n";
}

/// CCU-level cyber event.
constexpr const char* kUserAtWindowSpec = R"(
event USER_AT_WINDOW {
  window: 10 s;
  slot n = event(NEARBY_WINDOW);
  when rho(n) >= 0.1;
  emit { confidence: mean * 0.95; }
}
)";

}  // namespace

std::optional<double> SmartBuildingResult::edl_ms() const {
  if (!true_entry.has_value() || !first_detection.has_value()) return std::nullopt;
  return static_cast<double>((*first_detection - *true_entry).ticks()) / 1000.0;
}

SmartBuilding::SmartBuilding(SmartBuildingConfig config) : config_(std::move(config)) {
  deployment_ = std::make_unique<Deployment>(config_.deployment);
  user_ = std::make_shared<sensing::MovingObject>(
      "userA", config_.waypoints, time_model::TimePoint::epoch(), config_.user_speed);

  // Motes: range sensor + the RANGE_userA definition.
  const auto range_def = eventlang::parse_event(kRangeEventSpec);
  deployment_->for_each_mote([&](wsn::SensorMote& mote) {
    mote.add_sensor(std::make_shared<sensing::RangeSensor>(
        core::SensorId("SRrange"), user_, config_.sensor_max_range,
        config_.range_noise_sigma));
    mote.add_definition(range_def);
  });

  // Sinks: localization plus the NEARBY_WINDOW definition.
  for (auto& sink : deployment_->sinks()) {
    wsn::Localizer::Config lcfg;
    lcfg.range_event = core::EventTypeId("RANGE_userA");
    lcfg.output_event = core::EventTypeId("LOC_userA");
    lcfg.window = time_model::seconds(3);
    lcfg.min_anchors = 3;
    lcfg.max_residual = 8.0;
    sink->enable_localization(lcfg);
    sink->add_definition(eventlang::parse_event(nearby_spec(config_.window_lo, config_.window_hi)));

    sink->on_instance([this](const core::EventInstance& inst) {
      const time_model::TimePoint now = inst.gen_time;
      if (inst.key.event == core::EventTypeId("LOC_userA")) {
        ++result_.location_estimates;
        // Score the estimate against the user's true position.
        const geom::Point truth = user_->position(inst.est_time.end());
        const double err = geom::distance(inst.est_location.representative(), truth);
        result_.mean_location_error_m +=
            (err - result_.mean_location_error_m) /
            static_cast<double>(result_.location_estimates);
      } else if (inst.key.event == core::EventTypeId("NEARBY_WINDOW")) {
        ++result_.nearby_detections;
        if (!result_.first_detection.has_value()) result_.first_detection = now;
      }
    });
  }

  // CCU: cyber event + Event-Action rule closing the window.
  deployment_->ccu().subscribe(core::EventTypeId("NEARBY_WINDOW"));
  deployment_->ccu().add_definition(eventlang::parse_event(kUserAtWindowSpec));
  deployment_->ccu().add_rule(cps::ActionRule{
      core::EventTypeId("USER_AT_WINDOW"),
      [](const core::EventInstance& inst) -> std::optional<net::Command> {
        net::Command cmd;
        cmd.target = net::NodeId("AR_window");
        cmd.verb = "close_window";
        cmd.cause = inst.key;
        return cmd;
      }});
  deployment_->ccu().on_instance([this](const core::EventInstance&) { ++result_.cyber_events; });

  // Database archives the interesting topics.
  deployment_->database().archive_topic("NEARBY_WINDOW");
  deployment_->database().archive_topic("USER_AT_WINDOW");

  // The window actor.
  const geom::Point window_center{(config_.window_lo.x + config_.window_hi.x) / 2,
                                  (config_.window_lo.y + config_.window_hi.y) / 2};
  deployment_->add_actor(net::NodeId("AR_window"), window_center,
                         [this](const net::Command& cmd, time_model::TimePoint now) {
                           ++result_.commands;
                           if (cmd.verb == "close_window" &&
                               !result_.window_closed.has_value()) {
                             result_.window_closed = now;
                           }
                         });
}

SmartBuildingResult SmartBuilding::run() {
  const geom::Polygon zone = geom::Polygon::rectangle(config_.window_lo, config_.window_hi);
  result_.true_entry =
      user_->first_entry(zone, time_model::TimePoint::epoch(),
                         time_model::TimePoint::epoch() + config_.horizon,
                         time_model::milliseconds(100));

  deployment_->run_until(time_model::TimePoint::epoch() + config_.horizon);
  result_.network = deployment_->network().stats();
  return result_;
}

}  // namespace stem::scenario
