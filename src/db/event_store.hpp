#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "geom/bbox.hpp"
#include "net/broker.hpp"
#include "net/network.hpp"

namespace stem::db {

/// Filter for event-instance retrieval. Unset fields match everything.
struct Query {
  std::optional<core::EventTypeId> event;
  std::optional<core::ObserverId> observer;
  std::optional<core::Layer> layer;
  /// Matches instances whose estimated occurrence intersects this range.
  std::optional<time_model::TimeInterval> time_range;
  /// Matches instances whose estimated location's bbox intersects this.
  std::optional<geom::BoundingBox> region;
  std::optional<double> min_confidence;
};

/// In-memory event-instance log with typed range queries — the storage
/// engine behind the paper's database server ("a distributed data logging
/// service for the event instances ... for later retrieval").
class EventStore {
 public:
  void insert(core::EventInstance inst);

  [[nodiscard]] std::size_t size() const { return instances_.size(); }

  /// Instances matching `q`, in insertion order.
  [[nodiscard]] std::vector<const core::EventInstance*> query(const Query& q) const;
  [[nodiscard]] std::size_t count(const Query& q) const { return query(q).size(); }

  /// Drops instances generated before `horizon` (retention policy).
  /// Returns the number removed.
  std::size_t prune_before(time_model::TimePoint horizon);

  /// Follows provenance links downward from `key`, returning every stored
  /// ancestor instance (the paper's "information regarding the original
  /// physical event" kept intact). Missing ancestors are skipped.
  [[nodiscard]] std::vector<const core::EventInstance*> lineage(
      const core::EventInstanceKey& key) const;

 private:
  [[nodiscard]] const core::EventInstance* find(const core::EventInstanceKey& key) const;
  static bool matches(const core::EventInstance& inst, const Query& q);

  std::vector<core::EventInstance> instances_;
};

/// The network-attached database server of Fig. 1: subscribes to event
/// topics on the broker and archives everything it receives. "The event
/// instances that circulate inside the CPS network are automatically
/// transferred to the database server."
class DatabaseServer {
 public:
  struct Config {
    net::NodeId id;
  };

  DatabaseServer(net::Network& network, net::Broker& broker, Config config);
  DatabaseServer(const DatabaseServer&) = delete;
  DatabaseServer& operator=(const DatabaseServer&) = delete;

  /// Archives every instance published under `topic`.
  void archive_topic(const std::string& topic);

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] EventStore& store() { return store_; }
  [[nodiscard]] const EventStore& store() const { return store_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Broker& broker_;
  Config config_;
  EventStore store_;
};

}  // namespace stem::db
