#include "db/event_store.hpp"

#include <algorithm>

namespace stem::db {

void EventStore::insert(core::EventInstance inst) { instances_.push_back(std::move(inst)); }

bool EventStore::matches(const core::EventInstance& inst, const Query& q) {
  if (q.event.has_value() && inst.key.event != *q.event) return false;
  if (q.observer.has_value() && inst.key.observer != *q.observer) return false;
  if (q.layer.has_value() && inst.layer != *q.layer) return false;
  if (q.min_confidence.has_value() && inst.confidence < *q.min_confidence) return false;
  if (q.time_range.has_value() && !q.time_range->intersects(inst.est_time.as_interval())) {
    return false;
  }
  if (q.region.has_value() && !q.region->intersects(inst.est_location.bbox())) return false;
  return true;
}

std::vector<const core::EventInstance*> EventStore::query(const Query& q) const {
  std::vector<const core::EventInstance*> out;
  for (const auto& inst : instances_) {
    if (matches(inst, q)) out.push_back(&inst);
  }
  return out;
}

std::size_t EventStore::prune_before(time_model::TimePoint horizon) {
  const std::size_t before = instances_.size();
  std::erase_if(instances_,
                [horizon](const core::EventInstance& i) { return i.gen_time < horizon; });
  return before - instances_.size();
}

const core::EventInstance* EventStore::find(const core::EventInstanceKey& key) const {
  for (const auto& inst : instances_) {
    if (inst.key == key) return &inst;
  }
  return nullptr;
}

std::vector<const core::EventInstance*> EventStore::lineage(
    const core::EventInstanceKey& key) const {
  std::vector<const core::EventInstance*> out;
  std::vector<core::EventInstanceKey> frontier{key};
  while (!frontier.empty()) {
    const core::EventInstanceKey k = frontier.back();
    frontier.pop_back();
    const core::EventInstance* inst = find(k);
    if (inst == nullptr) continue;
    if (std::find(out.begin(), out.end(), inst) != out.end()) continue;
    out.push_back(inst);
    for (const auto& parent : inst->provenance) frontier.push_back(parent);
  }
  return out;
}

DatabaseServer::DatabaseServer(net::Network& network, net::Broker& broker, Config config)
    : network_(network), broker_(broker), config_(std::move(config)) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void DatabaseServer::archive_topic(const std::string& topic) {
  broker_.subscribe(topic, config_.id);
}

void DatabaseServer::on_message(const net::Message& msg) {
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr || !entity->is_instance()) return;
  store_.insert(entity->instance());
}

}  // namespace stem::db
