#include "analysis/edl.hpp"

#include <ostream>
#include <stdexcept>

namespace stem::analysis {

void EdlTracker::record(const core::EventTypeId& event, time_model::TimePoint physical,
                        time_model::TimePoint detected) {
  const double ms = static_cast<double>((detected - physical).ticks()) / 1000.0;
  samples_[event].add(ms);
}

std::size_t EdlTracker::count(const core::EventTypeId& event) const {
  const auto it = samples_.find(event);
  return it == samples_.end() ? 0 : it->second.count();
}

double EdlTracker::percentile_ms(const core::EventTypeId& event, double p) const {
  const auto it = samples_.find(event);
  return it == samples_.end() ? 0.0 : it->second.percentile(p);
}

double EdlTracker::mean_ms(const core::EventTypeId& event) const {
  const auto it = samples_.find(event);
  return it == samples_.end() ? 0.0 : it->second.mean();
}

time_model::Duration EdlModel::expected() const { return expected_at(core::Layer::kCyber); }

time_model::Duration EdlModel::worst_case() const {
  return expected_at(core::Layer::kCyber) + sampling_period / 2;
}

time_model::Duration EdlModel::expected_at(core::Layer layer) const {
  using time_model::Duration;
  Duration acc = sampling_period / 2;  // expected sampling phase
  acc += mote_proc;
  if (layer == core::Layer::kSensor || layer == core::Layer::kPhysicalObservation) return acc;
  acc += hop_latency * hops;
  acc += sink_proc;
  if (layer == core::Layer::kCyberPhysical) return acc;
  acc += net_latency * 2;  // src -> broker -> subscriber
  acc += ccu_proc;
  return acc;
}

std::ostream& operator<<(std::ostream& os, const EdlModel& model) {
  return os << "EDL{P=" << model.sampling_period << " mote=" << model.mote_proc
            << " hops=" << model.hops << "x" << model.hop_latency
            << " sink=" << model.sink_proc << " net=2x" << model.net_latency
            << " ccu=" << model.ccu_proc << " => E=" << model.expected()
            << " W=" << model.worst_case() << "}";
}

}  // namespace stem::analysis
