#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "core/instance.hpp"
#include "sim/stats.hpp"
#include "time/time_point.hpp"

namespace stem::analysis {

/// Event Detection Latency instrumentation — the formal temporal analysis
/// the paper defers to future work (Sec. 6): "a formal temporal analysis
/// of Event Detection Latency (EDL) based on the proposed framework and
/// building an end-to-end latency model for CPSs."
///
/// EDL of an instance is the delay from the ground-truth physical
/// occurrence to the instance's generation at the observing layer:
///   EDL = t^g(instance) - t^o(physical event).
class EdlTracker {
 public:
  /// Records one detection of `event` whose physical occurrence (began) at
  /// `physical` and was reflected in an instance generated at `detected`.
  void record(const core::EventTypeId& event, time_model::TimePoint physical,
              time_model::TimePoint detected);

  /// Convenience overload reading t^g from the instance.
  void record(const core::EventInstance& inst, time_model::TimePoint physical) {
    record(inst.key.event, physical, inst.gen_time);
  }

  [[nodiscard]] std::size_t count(const core::EventTypeId& event) const;
  /// EDL percentile in milliseconds.
  [[nodiscard]] double percentile_ms(const core::EventTypeId& event, double p) const;
  [[nodiscard]] double mean_ms(const core::EventTypeId& event) const;

 private:
  std::unordered_map<core::EventTypeId, sim::Percentiles> samples_;
};

/// Analytical end-to-end latency model, decomposed along the paper's
/// architecture (Fig. 1/2 pipeline):
///
///   physical event --(sampling)--> observation --(mote MCU)--> sensor
///   event --(WSN hops)--> sink --(sink proc)--> cyber-physical event
///   --(CPS network: publish + fan-out)--> CCU --(CCU proc)--> cyber event
///
/// Expected EDL  = P/2 + d_mote + h*(d_hop) + d_sink + 2*d_net + d_ccu
/// Worst-case    = P   + d_mote + h*(d_hop) + d_sink + 2*d_net + d_ccu
/// where P is the sampling period (detection cannot precede the next
/// sample: uniformly distributed phase gives P/2 expected, P worst), and
/// d_net appears twice because publication crosses the broker (src ->
/// broker -> subscriber).
struct EdlModel {
  time_model::Duration sampling_period = time_model::seconds(1);
  time_model::Duration mote_proc = time_model::milliseconds(5);
  time_model::Duration hop_latency = time_model::milliseconds(3);  ///< mean per-hop
  int hops = 1;                                                    ///< mote -> sink hops
  time_model::Duration sink_proc = time_model::milliseconds(10);
  time_model::Duration net_latency = time_model::milliseconds(3);  ///< per broker leg, mean
  time_model::Duration ccu_proc = time_model::milliseconds(20);

  /// Expected EDL of a cyber event (CCU level).
  [[nodiscard]] time_model::Duration expected() const;
  /// Worst-case EDL given the same parameters (full sampling phase).
  [[nodiscard]] time_model::Duration worst_case() const;
  /// Expected EDL up to a given layer of the hierarchy: sensor events stop
  /// after the mote, cyber-physical after the sink, cyber after the CCU.
  [[nodiscard]] time_model::Duration expected_at(core::Layer layer) const;
};

std::ostream& operator<<(std::ostream& os, const EdlModel& model);

}  // namespace stem::analysis
