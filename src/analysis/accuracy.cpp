#include "analysis/accuracy.hpp"

#include <algorithm>
#include <cmath>

namespace stem::analysis {

AccuracyReport score_detections(const std::vector<const sensing::PhysicalEvent*>& truths,
                                const std::vector<const core::EventInstance*>& detections,
                                const MatchConfig& config) {
  AccuracyReport report;
  report.truths = truths.size();
  report.detections = detections.size();

  std::vector<bool> truth_used(truths.size(), false);
  double time_err_sum = 0.0;
  double space_err_sum = 0.0;

  for (const core::EventInstance* det : detections) {
    std::size_t best = truths.size();
    double best_dt = 0.0;
    for (std::size_t i = 0; i < truths.size(); ++i) {
      if (truth_used[i]) continue;
      const sensing::PhysicalEvent* truth = truths[i];
      const auto dt_ticks =
          std::abs((det->est_time.begin() - truth->time.begin()).ticks());
      if (time_model::Duration(dt_ticks) > config.time_tolerance) continue;
      if (config.space_tolerance > 0.0) {
        const double d = geom::distance(det->est_location.representative(),
                                        truth->location.representative());
        if (d > config.space_tolerance) continue;
      }
      const auto dt = static_cast<double>(dt_ticks);
      if (best == truths.size() || dt < best_dt) {
        best = i;
        best_dt = dt;
      }
    }
    if (best == truths.size()) continue;
    truth_used[best] = true;
    ++report.matched;
    time_err_sum += best_dt / 1000.0;
    space_err_sum += geom::distance(det->est_location.representative(),
                                    truths[best]->location.representative());
  }

  if (report.matched > 0) {
    report.mean_time_error_ms = time_err_sum / static_cast<double>(report.matched);
    report.mean_space_error_m = space_err_sum / static_cast<double>(report.matched);
  }
  return report;
}

}  // namespace stem::analysis
