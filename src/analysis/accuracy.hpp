#pragma once

#include <vector>

#include "core/instance.hpp"
#include "sensing/physical_event.hpp"

namespace stem::analysis {

/// Detection-accuracy scoring: matches detected event instances against
/// ground-truth physical events and reports precision / recall / F1 plus
/// spatial error. Matching is greedy one-to-one: a detection matches the
/// nearest-in-time unmatched truth whose occurrence times fall within
/// `time_tolerance` and (if both carry locations) whose locations are
/// within `space_tolerance`.
struct MatchConfig {
  time_model::Duration time_tolerance = time_model::seconds(10);
  double space_tolerance = 50.0;  ///< meters; <=0 disables the spatial gate
};

struct AccuracyReport {
  std::size_t truths = 0;
  std::size_t detections = 0;
  std::size_t matched = 0;

  [[nodiscard]] double precision() const {
    return detections == 0 ? 0.0 : static_cast<double>(matched) / static_cast<double>(detections);
  }
  [[nodiscard]] double recall() const {
    return truths == 0 ? 0.0 : static_cast<double>(matched) / static_cast<double>(truths);
  }
  [[nodiscard]] double f1() const {
    const double p = precision(), r = recall();
    return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }

  /// Mean |t_detect_begin - t_truth_begin| over matches, in ms.
  double mean_time_error_ms = 0.0;
  /// Mean representative-point distance over matches, in meters.
  double mean_space_error_m = 0.0;
};

/// Scores `detections` against `truths`.
[[nodiscard]] AccuracyReport score_detections(
    const std::vector<const sensing::PhysicalEvent*>& truths,
    const std::vector<const core::EventInstance*>& detections, const MatchConfig& config = {});

}  // namespace stem::analysis
