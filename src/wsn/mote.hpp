#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sensing/sensor.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "wsn/energy.hpp"

namespace stem::wsn {

using net::Message;
using net::NodeId;

/// Per-mote counters.
struct MoteStats {
  std::uint64_t samples = 0;        ///< sensor samples taken
  std::uint64_t observations = 0;   ///< non-empty observations produced
  std::uint64_t events_emitted = 0; ///< sensor event instances emitted
  std::uint64_t sent_up = 0;        ///< messages sent toward the sink
  std::uint64_t relayed = 0;        ///< messages relayed for other motes
};

/// A sensor mote (paper Sec. 3): hosts sensors and an MCU running the
/// first-level detection engine (Fig. 2's sensor event layer), plus a
/// transceiver. Motes also "serve as repeaters to relay and aggregate
/// packets from other motes" — any entity message a mote receives is
/// forwarded toward its routing parent.
class SensorMote {
 public:
  struct Config {
    NodeId id;
    geom::Point position;
    time_model::Duration sampling_period = time_model::seconds(1);
    /// MCU processing delay between sampling and transmission.
    time_model::Duration proc_delay = time_model::milliseconds(5);
    /// If true, raw observations are forwarded upstream instead of (and in
    /// addition to nothing) local sensor-event detection — the centralized
    /// baseline of experiment E5.
    bool forward_raw = false;
    /// Packet aggregation (the paper's "relay and aggregate packets"):
    /// when positive, entities heading upstream are buffered and sent as
    /// one EntityBatch at most every `aggregate_window`. Zero disables.
    time_model::Duration aggregate_window = time_model::Duration::zero();
    core::EngineOptions engine_options{};
    EnergyModel energy_model{};
    /// Clock-skew model: observations and sensor events are stamped with
    /// the mote's *local* clock = true time + offset + drift. In a
    /// distributed CPS only partial ordering is available (paper Sec. 2's
    /// middleware discussion); these knobs let experiments quantify how
    /// skew corrupts cross-mote temporal conditions.
    time_model::Duration clock_offset = time_model::Duration::zero();
    double clock_drift_ppm = 0.0;
    /// Opt-in reliable uplink: upstream sends ride an acked session
    /// (net::ReliableEndpoint) instead of fire-and-forget. The parent must
    /// also be a reliable endpoint (it has to ack), and the radio link must
    /// be bidirectional. Energy is charged for the first transmission only;
    /// retransmissions are the session's business (the per-link
    /// `retransmitted` counter still exposes them).
    bool reliable_uplink = false;
    net::ReliableEndpoint::Options reliable_options{};
    std::uint64_t reliable_seed = 0x4073;
  };

  /// The mote's local clock reading at true time `t`.
  [[nodiscard]] time_model::TimePoint local_time(time_model::TimePoint t) const;

  SensorMote(net::Network& network, Config config, sim::Rng rng);
  SensorMote(const SensorMote&) = delete;
  SensorMote& operator=(const SensorMote&) = delete;

  void add_sensor(std::shared_ptr<const sensing::Sensor> sensor);
  /// Registers a sensor-event definition on the mote's engine.
  void add_definition(core::EventDefinition def) { engine_.add_definition(std::move(def)); }

  /// Sets the next hop toward the sink.
  void set_parent(NodeId parent) { parent_ = std::move(parent); }
  [[nodiscard]] const std::optional<NodeId>& parent() const { return parent_; }

  /// Starts the periodic sampling loop, running until `until`.
  void start(time_model::TimePoint until);

  /// Failure injection: the mote dies at `when` — it stops sampling,
  /// emitting, and relaying (messages routed through it are lost, as with
  /// a real dead repeater).
  void fail_at(time_model::TimePoint when);
  [[nodiscard]] bool failed() const { return failed_; }

  [[nodiscard]] const NodeId& id() const { return config_.id; }
  [[nodiscard]] geom::Point position() const { return config_.position; }
  [[nodiscard]] const MoteStats& stats() const { return stats_; }
  [[nodiscard]] core::DetectionEngine& engine() { return engine_; }
  /// Battery drain so far (see EnergyModel).
  [[nodiscard]] const EnergyAccount& energy() const { return energy_; }

 private:
  void sample_tick(time_model::TimePoint until);
  void process_observation(core::PhysicalObservation obs);
  void send_up(net::Payload payload, std::uint32_t hops);
  void enqueue(core::Entity entity);
  void flush_batch();
  void on_message(const Message& msg);

  net::Network& network_;
  Config config_;
  sim::Rng rng_;
  std::unique_ptr<net::ReliableEndpoint> endpoint_;  ///< set iff reliable_uplink
  core::DetectionEngine engine_;
  std::vector<std::shared_ptr<const sensing::Sensor>> sensors_;
  std::vector<std::uint64_t> next_seq_;  // per sensor
  std::optional<NodeId> parent_;
  std::vector<core::Entity> pending_batch_;
  bool flush_scheduled_ = false;
  bool failed_ = false;
  MoteStats stats_;
  EnergyAccount energy_;
};

}  // namespace stem::wsn
