#include "wsn/mote.hpp"

#include <cmath>

namespace stem::wsn {

SensorMote::SensorMote(net::Network& network, Config config, sim::Rng rng)
    : network_(network),
      config_(std::move(config)),
      rng_(std::move(rng)),
      engine_(config_.id, core::Layer::kSensor, config_.position, config_.engine_options),
      energy_(config_.energy_model) {
  if (config_.reliable_uplink) {
    endpoint_ = std::make_unique<net::ReliableEndpoint>(
        network_, config_.id, [this](const Message& msg) { on_message(msg); },
        config_.reliable_options, config_.reliable_seed);
  } else {
    network_.register_node(config_.id, [this](const Message& msg) { on_message(msg); });
  }
}

void SensorMote::add_sensor(std::shared_ptr<const sensing::Sensor> sensor) {
  sensors_.push_back(std::move(sensor));
  next_seq_.push_back(0);
}

void SensorMote::start(time_model::TimePoint until) {
  network_.simulator().schedule_after(config_.sampling_period,
                                      [this, until] { sample_tick(until); });
}

time_model::TimePoint SensorMote::local_time(time_model::TimePoint t) const {
  const auto elapsed = static_cast<double>((t - time_model::TimePoint::epoch()).ticks());
  const auto drift =
      static_cast<time_model::Tick>(std::llround(config_.clock_drift_ppm * 1e-6 * elapsed));
  return t + config_.clock_offset + time_model::Duration(drift);
}

void SensorMote::fail_at(time_model::TimePoint when) {
  network_.simulator().schedule_at(when, [this] { failed_ = true; });
}

void SensorMote::sample_tick(time_model::TimePoint until) {
  if (failed_) return;
  sim::Simulator& sim = network_.simulator();
  const time_model::TimePoint now = sim.now();
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    ++stats_.samples;
    energy_.charge_sample();
    const auto attrs = sensors_[i]->sample(config_.position, now, rng_);
    if (!attrs.has_value()) continue;
    ++stats_.observations;
    core::PhysicalObservation obs;
    obs.mote = config_.id;
    obs.sensor = sensors_[i]->id();
    obs.seq = next_seq_[i]++;
    obs.time = local_time(now);
    obs.location = geom::Location(config_.position);
    obs.attributes = *attrs;
    // MCU processing happens after proc_delay.
    sim.schedule_after(config_.proc_delay,
                       [this, o = std::move(obs)]() mutable { process_observation(std::move(o)); });
  }
  if (now + config_.sampling_period <= until) {
    sim.schedule_after(config_.sampling_period, [this, until] { sample_tick(until); });
  }
}

void SensorMote::process_observation(core::PhysicalObservation obs) {
  if (failed_) return;
  const time_model::TimePoint now = network_.simulator().now();
  const core::Entity entity(std::move(obs));
  if (config_.forward_raw) {
    send_up(entity, 0);
    return;
  }
  energy_.charge_eval(engine_.definition_count());
  auto instances = engine_.observe(entity, local_time(now));
  for (auto& inst : instances) {
    ++stats_.events_emitted;
    send_up(core::Entity(std::move(inst)), 0);
  }
}

void SensorMote::enqueue(core::Entity entity) {
  pending_batch_.push_back(std::move(entity));
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    network_.simulator().schedule_after(config_.aggregate_window, [this] { flush_batch(); });
  }
}

void SensorMote::flush_batch() {
  flush_scheduled_ = false;
  if (failed_ || pending_batch_.empty() || !parent_.has_value()) {
    pending_batch_.clear();
    return;
  }
  net::Payload payload = net::EntityBatch{std::move(pending_batch_)};
  pending_batch_.clear();
  const std::size_t bytes = net::estimate_size(payload);
  ++stats_.sent_up;
  energy_.charge_tx(bytes);
  if (endpoint_ != nullptr) {
    endpoint_->send(*parent_, std::move(payload), bytes);
    return;
  }
  Message msg;
  msg.src = config_.id;
  msg.dst = *parent_;
  msg.payload = std::move(payload);
  msg.bytes = bytes;
  msg.hops = 1;
  network_.send(std::move(msg));
}

void SensorMote::send_up(net::Payload payload, std::uint32_t hops) {
  if (!parent_.has_value()) return;  // disconnected mote
  if (config_.aggregate_window > time_model::Duration::zero()) {
    if (auto* entity = std::get_if<core::Entity>(&payload)) {
      enqueue(std::move(*entity));
      return;
    }
    if (auto* batch = std::get_if<net::EntityBatch>(&payload)) {
      for (auto& e : batch->entities) enqueue(std::move(e));
      return;
    }
  }
  const std::size_t bytes = net::estimate_size(payload);
  ++stats_.sent_up;
  energy_.charge_tx(bytes);
  if (endpoint_ != nullptr) {
    endpoint_->send(*parent_, std::move(payload), bytes);
    return;
  }
  Message msg;
  msg.src = config_.id;
  msg.dst = *parent_;
  msg.payload = std::move(payload);
  msg.bytes = bytes;
  msg.hops = hops + 1;
  network_.send(std::move(msg));
}

void SensorMote::on_message(const Message& msg) {
  if (failed_) return;  // a dead repeater drops traffic
  energy_.charge_rx(msg.bytes);
  // Repeater role: entities from child motes continue toward the sink.
  if (std::holds_alternative<core::Entity>(msg.payload)) {
    ++stats_.relayed;
    send_up(msg.payload, msg.hops);
  } else if (const auto* batch = std::get_if<net::EntityBatch>(&msg.payload)) {
    stats_.relayed += batch->entities.size();
    send_up(msg.payload, msg.hops);
  }
}

}  // namespace stem::wsn
