#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "net/broker.hpp"
#include "net/network.hpp"
#include "wsn/localizer.hpp"

namespace stem::wsn {

/// Per-sink counters.
struct SinkStats {
  std::uint64_t entities_received = 0;
  std::uint64_t instances_emitted = 0;
  std::uint64_t published = 0;
};

/// A WSN sink node (paper Sec. 3): a special mote that aggregates sensor
/// events from its sensor network and serves as the second-level observer
/// (Fig. 2's cyber-physical event layer). Detected cyber-physical event
/// instances are published on the CPS network's broker.
class SinkNode {
 public:
  struct Config {
    net::NodeId id;
    geom::Point position;
    /// Processing delay between receiving an entity and evaluating it.
    time_model::Duration proc_delay = time_model::milliseconds(10);
    /// If true, instances the sink emits are re-fed to its own engine so
    /// multi-level definitions resolve in one place (the centralized
    /// configuration of experiments E5/E8).
    bool cascade = false;
    core::EngineOptions engine_options{};
    /// Opt-in reliable reception and publication: the sink registers
    /// through a net::ReliableEndpoint, so reliable-uplink motes get
    /// exactly-once delivery into the sink, and instances published to the
    /// broker ride an acked session (the broker must then be reliable too).
    /// Plain senders interoperate unchanged.
    bool reliable = false;
    net::ReliableEndpoint::Options reliable_options{};
    std::uint64_t reliable_seed = 0x5117;
  };

  /// `broker` may be null for closed-world tests; instances are then only
  /// recorded locally.
  SinkNode(net::Network& network, net::Broker* broker, Config config);
  SinkNode(const SinkNode&) = delete;
  SinkNode& operator=(const SinkNode&) = delete;

  /// Registers a cyber-physical event definition.
  void add_definition(core::EventDefinition def) { engine_.add_definition(std::move(def)); }
  /// Enables range-event localization (see Localizer).
  void enable_localization(Localizer::Config config);

  /// Callback invoked for every emitted instance (besides publication).
  void on_instance(std::function<void(const core::EventInstance&)> callback) {
    callbacks_.push_back(std::move(callback));
  }

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] geom::Point position() const { return config_.position; }
  [[nodiscard]] const SinkStats& stats() const { return stats_; }
  [[nodiscard]] core::DetectionEngine& engine() { return engine_; }
  /// Every instance this sink has emitted (engine + localizer).
  [[nodiscard]] const std::vector<core::EventInstance>& emitted() const { return emitted_; }

 private:
  void on_message(const net::Message& msg);
  void process_entity(const core::Entity& entity);
  void emit(core::EventInstance inst);

  net::Network& network_;
  net::Broker* broker_;
  Config config_;
  std::unique_ptr<net::ReliableEndpoint> endpoint_;  ///< set iff Config::reliable
  core::DetectionEngine engine_;
  std::unique_ptr<Localizer> localizer_;
  std::vector<std::function<void(const core::EventInstance&)>> callbacks_;
  std::vector<core::EventInstance> emitted_;
  SinkStats stats_;
};

}  // namespace stem::wsn
