#pragma once

#include <deque>
#include <optional>

#include "core/instance.hpp"
#include "sensing/localization.hpp"

namespace stem::wsn {

/// Turns per-mote range sensor events into position estimates.
///
/// This implements the paper's motivating heterogeneity example (Sec. 1):
/// a mote abstracts "user A is nearby window B" as a *range measurement*,
/// while the sink — having several motes' ranges — abstracts the same
/// physical event as the user's *location*. The localizer collects range
/// events (attribute "range", anchored at the producing mote's location)
/// and trilaterates when enough distinct anchors are available.
class Localizer {
 public:
  struct Config {
    core::EventTypeId range_event;   ///< sensor event type carrying "range"
    core::EventTypeId output_event;  ///< emitted cyber-physical event type
    time_model::Duration window = time_model::seconds(5);
    std::size_t min_anchors = 3;
    /// Estimates with RMS residual above this are rejected.
    double max_residual = 5.0;
  };

  explicit Localizer(Config config) : config_(std::move(config)) {}

  [[nodiscard]] const Config& config() const { return config_; }

  /// Feeds one sensor event. If it is a range event and enough fresh
  /// anchors exist, returns a location instance attributed to `self`.
  [[nodiscard]] std::optional<core::EventInstance> on_event(const core::EventInstance& event,
                                                            time_model::TimePoint now,
                                                            const core::ObserverId& self,
                                                            geom::Point self_position);

  [[nodiscard]] std::size_t pending_anchors() const { return anchors_.size(); }

 private:
  struct Anchor {
    core::ObserverId mote;
    geom::Point position;
    double range;
    time_model::TimePoint when;
    core::EventInstanceKey source;
  };

  Config config_;
  std::deque<Anchor> anchors_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace stem::wsn
