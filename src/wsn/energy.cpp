#include "wsn/energy.hpp"

#include <ostream>

namespace stem::wsn {

std::ostream& operator<<(std::ostream& os, const EnergyAccount& account) {
  return os << "energy{tx=" << account.tx_nj() << "nJ rx=" << account.rx_nj()
            << "nJ sample=" << account.sample_nj() << "nJ eval=" << account.eval_nj()
            << "nJ total=" << account.total_nj() << "nJ}";
}

}  // namespace stem::wsn
