#include "wsn/actor.hpp"

namespace stem::wsn {

ActorMote::ActorMote(net::Network& network, net::Broker* broker, Config config,
                     std::function<void(const net::Command&, time_model::TimePoint)> actuate)
    : network_(network),
      broker_(broker),
      config_(std::move(config)),
      actuate_(std::move(actuate)) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void ActorMote::on_message(const net::Message& msg) {
  const auto* cmd = std::get_if<net::Command>(&msg.payload);
  if (cmd == nullptr || cmd->target != config_.id) return;
  if (cmd->kind != net::Command::Kind::kActuate) return;  // never act on reports
  const time_model::TimePoint received = network_.simulator().now();
  network_.simulator().schedule_after(config_.actuation_delay, [this, c = *cmd, received] {
    const time_model::TimePoint now = network_.simulator().now();
    if (actuate_) actuate_(c, now);
    executed_.push_back(ExecutedCommand{c, received, now});
    if (broker_ != nullptr && network_.linked(config_.id, broker_->id())) {
      // Report execution on the report topic.
      net::Command report = c;
      report.kind = net::Command::Kind::kReport;
      report.target = config_.id;
      broker_->publish(config_.id, std::move(report));
    }
  });
}

DispatchNode::DispatchNode(net::Network& network, net::Broker& broker, Config config)
    : network_(network), broker_(broker), config_(std::move(config)) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void DispatchNode::serve(const net::NodeId& actor) {
  broker_.subscribe(net::Broker::command_topic(actor), config_.id);
}

void DispatchNode::on_message(const net::Message& msg) {
  const auto* cmd = std::get_if<net::Command>(&msg.payload);
  if (cmd == nullptr) return;
  // Disseminate to the target actor after a small processing delay.
  network_.simulator().schedule_after(config_.proc_delay, [this, m = msg]() mutable {
    net::Message out;
    out.src = config_.id;
    out.dst = std::get<net::Command>(m.payload).target;
    out.payload = std::move(m.payload);
    out.hops = m.hops + 1;
    network_.send(std::move(out));
    ++dispatched_;
  });
}

}  // namespace stem::wsn
