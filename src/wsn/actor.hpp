#pragma once

#include <functional>
#include <vector>

#include "net/broker.hpp"
#include "net/network.hpp"

namespace stem::wsn {

/// Record of an executed actuation.
struct ExecutedCommand {
  net::Command command;
  time_model::TimePoint received;
  time_model::TimePoint executed;
};

/// An actor mote (paper Sec. 3): evaluates action commands sent by the CPS
/// and drives its actuators, changing the physical world through the
/// `actuate` callback. Executed commands are reported back through the
/// broker ("Publish Executed Actuator Commands", Fig. 1).
class ActorMote {
 public:
  struct Config {
    net::NodeId id;
    geom::Point position;
    /// Mechanical/processing delay before the actuation takes effect.
    time_model::Duration actuation_delay = time_model::milliseconds(50);
  };

  /// `actuate` is invoked when a command takes effect; it is the hook into
  /// the physical-world simulation (e.g. close a window, start a pump).
  /// `broker` may be null; execution reports are then skipped.
  ActorMote(net::Network& network, net::Broker* broker, Config config,
            std::function<void(const net::Command&, time_model::TimePoint)> actuate = {});
  ActorMote(const ActorMote&) = delete;
  ActorMote& operator=(const ActorMote&) = delete;

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] geom::Point position() const { return config_.position; }
  [[nodiscard]] const std::vector<ExecutedCommand>& executed() const { return executed_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Broker* broker_;
  Config config_;
  std::function<void(const net::Command&, time_model::TimePoint)> actuate_;
  std::vector<ExecutedCommand> executed_;
};

/// A dispatch node (paper Sec. 3): the actuation-side gateway. It
/// subscribes to command topics on the broker and disseminates commands to
/// the actor motes it serves.
class DispatchNode {
 public:
  struct Config {
    net::NodeId id;
    geom::Point position;
    time_model::Duration proc_delay = time_model::milliseconds(5);
  };

  DispatchNode(net::Network& network, net::Broker& broker, Config config);
  DispatchNode(const DispatchNode&) = delete;
  DispatchNode& operator=(const DispatchNode&) = delete;

  /// Declares that this dispatch node serves `actor`: subscribes to the
  /// actor's command topic. The network link dispatch->actor must exist.
  void serve(const net::NodeId& actor);

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Broker& broker_;
  Config config_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace stem::wsn
