#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "net/network.hpp"

namespace stem::wsn {

/// Parameters for generating a sensor-network deployment.
struct TopologyConfig {
  double width = 100.0;   ///< deployment area (meters)
  double height = 100.0;
  std::size_t motes = 16;
  std::size_t sinks = 1;
  double radio_range = 30.0;  ///< single-hop radio reach (meters)
  std::uint64_t seed = 1;
  enum class Placement { kUniform, kGrid } placement = Placement::kUniform;
};

/// A generated deployment: mote/sink positions and the routing tree.
/// Parents are encoded as: parent_mote[i] is the index of mote i's parent
/// mote, or nullopt if mote i's parent is a sink (see parent_sink) or the
/// mote is disconnected.
struct Topology {
  std::vector<geom::Point> mote_positions;
  std::vector<geom::Point> sink_positions;
  std::vector<std::optional<std::size_t>> parent_mote;
  std::vector<std::optional<std::size_t>> parent_sink;
  std::vector<int> depth;  ///< hops to the owning sink; -1 if disconnected

  [[nodiscard]] bool connected(std::size_t mote) const {
    return depth[mote] >= 0;
  }
  [[nodiscard]] std::size_t connected_count() const;
  [[nodiscard]] int max_depth() const;
};

/// Places motes and sinks and builds a shortest-hop routing forest (BFS
/// from the sinks over the radio-range connectivity graph). Sinks are
/// placed on an even grid; motes per `placement`.
[[nodiscard]] Topology build_topology(const TopologyConfig& config);

}  // namespace stem::wsn
