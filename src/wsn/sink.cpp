#include "wsn/sink.hpp"

namespace stem::wsn {

SinkNode::SinkNode(net::Network& network, net::Broker* broker, Config config)
    : network_(network),
      broker_(broker),
      config_(std::move(config)),
      engine_(config_.id, core::Layer::kCyberPhysical, config_.position,
              config_.engine_options) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void SinkNode::enable_localization(Localizer::Config lconfig) {
  localizer_ = std::make_unique<Localizer>(std::move(lconfig));
}

void SinkNode::on_message(const net::Message& msg) {
  if (const auto* batch = std::get_if<net::EntityBatch>(&msg.payload)) {
    stats_.entities_received += batch->entities.size();
    network_.simulator().schedule_after(config_.proc_delay, [this, b = *batch] {
      for (const auto& e : b.entities) process_entity(e);
    });
    return;
  }
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr) return;
  ++stats_.entities_received;
  network_.simulator().schedule_after(
      config_.proc_delay, [this, e = *entity] { process_entity(e); });
}

void SinkNode::process_entity(const core::Entity& entity) {
  const time_model::TimePoint now = network_.simulator().now();

  if (localizer_ != nullptr && entity.is_instance()) {
    if (auto located = localizer_->on_event(entity.instance(), now, config_.id,
                                            config_.position)) {
      // The location estimate is itself an entity for the sink's engine
      // (e.g. zone-entry conditions over the estimated position).
      auto derived = engine_.observe(core::Entity(*located), now);
      emit(*std::move(located));
      for (auto& inst : derived) emit(std::move(inst));
    }
  }

  std::vector<core::EventInstance> frontier = engine_.observe(entity, now);
  while (!frontier.empty()) {
    std::vector<core::EventInstance> next;
    if (config_.cascade) {
      for (const auto& inst : frontier) {
        auto derived = engine_.observe(core::Entity(inst), now);
        for (auto& d : derived) next.push_back(std::move(d));
      }
    }
    for (auto& inst : frontier) emit(std::move(inst));
    frontier = std::move(next);
  }
}

void SinkNode::emit(core::EventInstance inst) {
  ++stats_.instances_emitted;
  for (const auto& cb : callbacks_) cb(inst);
  emitted_.push_back(inst);
  if (broker_ != nullptr && network_.linked(config_.id, broker_->id())) {
    ++stats_.published;
    broker_->publish(config_.id, core::Entity(std::move(inst)));
  }
}

}  // namespace stem::wsn
