#include "wsn/sink.hpp"

namespace stem::wsn {

SinkNode::SinkNode(net::Network& network, net::Broker* broker, Config config)
    : network_(network),
      broker_(broker),
      config_(std::move(config)),
      engine_(config_.id, core::Layer::kCyberPhysical, config_.position,
              config_.engine_options) {
  if (config_.reliable) {
    endpoint_ = std::make_unique<net::ReliableEndpoint>(
        network_, config_.id, [this](const net::Message& msg) { on_message(msg); },
        config_.reliable_options, config_.reliable_seed);
  } else {
    network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
  }
}

void SinkNode::enable_localization(Localizer::Config lconfig) {
  localizer_ = std::make_unique<Localizer>(std::move(lconfig));
}

void SinkNode::on_message(const net::Message& msg) {
  if (const auto* batch = std::get_if<net::EntityBatch>(&msg.payload)) {
    stats_.entities_received += batch->entities.size();
    network_.simulator().schedule_after(config_.proc_delay, [this, b = *batch] {
      for (const auto& e : b.entities) process_entity(e);
    });
    return;
  }
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr) return;
  ++stats_.entities_received;
  network_.simulator().schedule_after(
      config_.proc_delay, [this, e = *entity] { process_entity(e); });
}

void SinkNode::process_entity(const core::Entity& entity) {
  const time_model::TimePoint now = network_.simulator().now();

  if (localizer_ != nullptr && entity.is_instance()) {
    if (auto located = localizer_->on_event(entity.instance(), now, config_.id,
                                            config_.position)) {
      // The location estimate is itself an entity for the sink's engine
      // (e.g. zone-entry conditions over the estimated position). Wrap it
      // by move and reclaim it for emission — no copy.
      core::Entity ent(*std::move(located));
      auto derived = engine_.observe(ent, now);
      emit(std::move(ent).extract_instance());
      for (auto& inst : derived) emit(std::move(inst));
    }
  }

  // The cascading configuration re-feeds derived instances inside the
  // engine (shared machinery with FlatCollector / the sharded runtime);
  // emission order — level 1, then level 2, ... — is unchanged from the
  // old caller-side frontier loop, which copied every instance.
  auto instances = config_.cascade ? engine_.observe_cascading(entity, now)
                                   : engine_.observe(entity, now);
  for (auto& inst : instances) emit(std::move(inst));
}

void SinkNode::emit(core::EventInstance inst) {
  ++stats_.instances_emitted;
  for (const auto& cb : callbacks_) cb(inst);
  emitted_.push_back(inst);
  if (broker_ != nullptr && network_.linked(config_.id, broker_->id())) {
    ++stats_.published;
    if (endpoint_ != nullptr) {
      endpoint_->send(broker_->id(), core::Entity(std::move(inst)));
    } else {
      broker_->publish(config_.id, core::Entity(std::move(inst)));
    }
  }
}

}  // namespace stem::wsn
