#pragma once

#include <cstdint>
#include <iosfwd>

namespace stem::wsn {

/// First-order mote energy model (Heinzelman-style radio constants scaled
/// to integers). Motes are battery-powered; the architectural argument for
/// mote-side condition evaluation (paper Sec. 3, experiment E5) is as much
/// about *energy* as messages: radio transmission dominates MCU work by
/// orders of magnitude, so shipping raw samples drains the network.
struct EnergyModel {
  /// nJ per byte transmitted / received over the radio.
  double tx_nj_per_byte = 800.0;
  double rx_nj_per_byte = 400.0;
  /// nJ per sensor sample (ADC + sensor excitation).
  double sample_nj = 2'000.0;
  /// nJ per condition-tree evaluation on the MCU.
  double eval_nj = 50.0;
};

/// Per-mote energy account, charged by the owner as activity happens.
class EnergyAccount {
 public:
  explicit EnergyAccount(EnergyModel model = {}) : model_(model) {}

  void charge_tx(std::size_t bytes) { tx_nj_ += model_.tx_nj_per_byte * static_cast<double>(bytes); }
  void charge_rx(std::size_t bytes) { rx_nj_ += model_.rx_nj_per_byte * static_cast<double>(bytes); }
  void charge_sample() { sample_nj_ += model_.sample_nj; }
  void charge_eval(std::size_t evaluations = 1) {
    eval_nj_ += model_.eval_nj * static_cast<double>(evaluations);
  }

  [[nodiscard]] double tx_nj() const { return tx_nj_; }
  [[nodiscard]] double rx_nj() const { return rx_nj_; }
  [[nodiscard]] double sample_nj() const { return sample_nj_; }
  [[nodiscard]] double eval_nj() const { return eval_nj_; }
  [[nodiscard]] double total_nj() const { return tx_nj_ + rx_nj_ + sample_nj_ + eval_nj_; }
  /// Radio share of total consumption, in [0, 1].
  [[nodiscard]] double radio_fraction() const {
    const double t = total_nj();
    return t > 0.0 ? (tx_nj_ + rx_nj_) / t : 0.0;
  }

  void reset() { *this = EnergyAccount(model_); }

 private:
  EnergyModel model_;
  double tx_nj_ = 0.0;
  double rx_nj_ = 0.0;
  double sample_nj_ = 0.0;
  double eval_nj_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, const EnergyAccount& account);

}  // namespace stem::wsn
