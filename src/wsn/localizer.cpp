#include "wsn/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace stem::wsn {

std::optional<core::EventInstance> Localizer::on_event(const core::EventInstance& event,
                                                       time_model::TimePoint now,
                                                       const core::ObserverId& self,
                                                       geom::Point self_position) {
  if (event.key.event != config_.range_event) return std::nullopt;
  const auto range = event.attributes.number("range");
  if (!range.has_value()) return std::nullopt;

  // Expire stale anchors, then insert/refresh this mote's measurement.
  const time_model::TimePoint horizon = now - config_.window;
  while (!anchors_.empty() && anchors_.front().when < horizon) anchors_.pop_front();
  std::erase_if(anchors_, [&](const Anchor& a) { return a.mote == event.key.observer; });
  anchors_.push_back(Anchor{event.key.observer,
                            event.gen_location,
                            *range,
                            event.est_time.end(),
                            event.key});

  if (anchors_.size() < config_.min_anchors) return std::nullopt;

  std::vector<sensing::RangeMeasurement> ms;
  ms.reserve(anchors_.size());
  for (const Anchor& a : anchors_) ms.push_back({a.position, a.range});
  const auto solved = sensing::trilaterate(ms);
  if (!solved.has_value() || solved->rms_residual > config_.max_residual) return std::nullopt;

  core::EventInstance inst;
  inst.key = core::EventInstanceKey{self, config_.output_event, next_seq_++};
  inst.layer = core::Layer::kCyberPhysical;
  inst.gen_time = now;
  inst.gen_location = self_position;
  // The estimated occurrence spans the contributing measurements.
  time_model::TimePoint earliest = anchors_.front().when;
  time_model::TimePoint latest = anchors_.front().when;
  for (const Anchor& a : anchors_) {
    earliest = std::min(earliest, a.when);
    latest = std::max(latest, a.when);
  }
  inst.est_time = earliest == latest
                      ? time_model::OccurrenceTime(earliest)
                      : time_model::OccurrenceTime(time_model::TimeInterval(earliest, latest));
  inst.est_location = geom::Location(solved->position);
  inst.attributes.set("rms_residual", solved->rms_residual);
  inst.attributes.set("anchors", static_cast<std::int64_t>(anchors_.size()));
  // Confidence decays with geometric inconsistency.
  inst.confidence = std::exp(-solved->rms_residual / config_.max_residual);
  for (const Anchor& a : anchors_) inst.provenance.push_back(a.source);

  // Consume the anchors so the next estimate uses fresh measurements.
  anchors_.clear();
  return inst;
}

}  // namespace stem::wsn
