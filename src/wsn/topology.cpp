#include "wsn/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "sim/random.hpp"

namespace stem::wsn {

std::size_t Topology::connected_count() const {
  return static_cast<std::size_t>(
      std::count_if(depth.begin(), depth.end(), [](int d) { return d >= 0; }));
}

int Topology::max_depth() const {
  int best = -1;
  for (const int d : depth) best = std::max(best, d);
  return best;
}

Topology build_topology(const TopologyConfig& config) {
  Topology topo;
  sim::Rng rng(config.seed);

  // Sinks on an even diagonal-ish grid across the area.
  for (std::size_t s = 0; s < config.sinks; ++s) {
    const double frac = (static_cast<double>(s) + 0.5) / static_cast<double>(config.sinks);
    topo.sink_positions.push_back({config.width * frac, config.height * frac});
  }

  // Motes.
  if (config.placement == TopologyConfig::Placement::kGrid) {
    const auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(config.motes))));
    for (std::size_t i = 0; i < config.motes; ++i) {
      const double gx = static_cast<double>(i % side) + 0.5;
      const double gy = static_cast<double>(i / side) + 0.5;
      topo.mote_positions.push_back(
          {config.width * gx / static_cast<double>(side),
           config.height * gy / static_cast<double>(side)});
    }
  } else {
    for (std::size_t i = 0; i < config.motes; ++i) {
      topo.mote_positions.push_back(
          {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)});
    }
  }

  const std::size_t n = config.motes;
  topo.parent_mote.assign(n, std::nullopt);
  topo.parent_sink.assign(n, std::nullopt);
  topo.depth.assign(n, -1);

  const double range2 = config.radio_range * config.radio_range;
  const auto in_range = [&](geom::Point a, geom::Point b) {
    return geom::distance2(a, b) <= range2;
  };

  // Multi-source BFS from the sinks.
  std::queue<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < topo.sink_positions.size(); ++s) {
      if (in_range(topo.mote_positions[i], topo.sink_positions[s])) {
        topo.parent_sink[i] = s;
        topo.depth[i] = 1;
        frontier.push(i);
        break;
      }
    }
  }
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v = 0; v < n; ++v) {
      if (topo.depth[v] >= 0) continue;
      if (!in_range(topo.mote_positions[u], topo.mote_positions[v])) continue;
      topo.parent_mote[v] = u;
      topo.depth[v] = topo.depth[u] + 1;
      frontier.push(v);
    }
  }
  return topo;
}

}  // namespace stem::wsn
