#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/polygon.hpp"
#include "sensing/physical_event.hpp"
#include "time/time_point.hpp"

namespace stem::sensing {

/// A scalar physical phenomenon sampled in space-time (temperature, light,
/// smoke density...). Implementations must be deterministic functions of
/// (position, time) so simulation runs are reproducible.
class ScalarField {
 public:
  virtual ~ScalarField() = default;
  /// Field value at `p` at time `t`.
  [[nodiscard]] virtual double value(geom::Point p, time_model::TimePoint t) const = 0;
};

/// Spatially and temporally constant field (ambient temperature).
class UniformField final : public ScalarField {
 public:
  explicit UniformField(double level) : level_(level) {}
  [[nodiscard]] double value(geom::Point, time_model::TimePoint) const override { return level_; }

 private:
  double level_;
};

/// A Gaussian hotspot superimposed on an ambient level:
///   v(p) = ambient + peak * exp(-|p - c|^2 / (2 sigma^2)).
class HotspotField final : public ScalarField {
 public:
  HotspotField(double ambient, double peak, geom::Point center, double sigma)
      : ambient_(ambient), peak_(peak), center_(center), sigma_(sigma) {}

  [[nodiscard]] double value(geom::Point p, time_model::TimePoint) const override;

  void move_to(geom::Point c) { center_ = c; }
  [[nodiscard]] geom::Point center() const { return center_; }

 private:
  double ambient_;
  double peak_;
  geom::Point center_;
  double sigma_;
};

/// A fire front spreading radially from an ignition point at a constant
/// speed, starting at `ignition_time`. Inside the burning disk the field
/// reads `burn_level`; outside it decays with distance to the front. The
/// burning footprint at time t is the paper's canonical *field event*.
class SpreadingFire final : public ScalarField {
 public:
  SpreadingFire(geom::Point ignition_point, time_model::TimePoint ignition_time,
                double speed_m_per_s, double ambient = 20.0, double burn_level = 400.0);

  [[nodiscard]] double value(geom::Point p, time_model::TimePoint t) const override;

  /// Radius of the burning disk at `t` (0 before ignition).
  [[nodiscard]] double radius_at(time_model::TimePoint t) const;
  /// Polygonal footprint of the fire at `t`, or nullopt before ignition.
  [[nodiscard]] std::optional<geom::Polygon> footprint(time_model::TimePoint t,
                                                       int vertices = 24) const;
  [[nodiscard]] geom::Point ignition_point() const { return ignition_; }
  [[nodiscard]] time_model::TimePoint ignition_time() const { return ignition_time_; }

 private:
  geom::Point ignition_;
  time_model::TimePoint ignition_time_;
  double speed_;  // meters per second
  double ambient_;
  double burn_level_;
};

/// An object (the paper's "user A") moving along waypoints at constant
/// speed, with position interpolated at any simulated time.
class MovingObject {
 public:
  /// `waypoints` are visited in order starting at `start`; movement speed
  /// is constant. Throws std::invalid_argument on empty waypoints or
  /// non-positive speed.
  MovingObject(std::string name, std::vector<geom::Point> waypoints,
               time_model::TimePoint start, double speed_m_per_s);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Position at time `t` (clamped to the path endpoints).
  [[nodiscard]] geom::Point position(time_model::TimePoint t) const;
  /// Time at which the object first enters `zone`, scanning [from, to] at
  /// `step` resolution; nullopt if it never does.
  [[nodiscard]] std::optional<time_model::TimePoint> first_entry(
      const geom::Polygon& zone, time_model::TimePoint from, time_model::TimePoint to,
      time_model::Duration step) const;

 private:
  std::string name_;
  std::vector<geom::Point> waypoints_;
  time_model::TimePoint start_;
  double speed_;  // meters per second
  std::vector<double> cumulative_;  // path length up to waypoint i
};

/// A two-state device (light, door) toggled on a fixed schedule; each
/// toggle is a punctual physical event.
class SwitchSchedule {
 public:
  /// `toggles` are the times at which the state flips; initial state off.
  explicit SwitchSchedule(std::vector<time_model::TimePoint> toggles);

  [[nodiscard]] bool state(time_model::TimePoint t) const;
  [[nodiscard]] const std::vector<time_model::TimePoint>& toggles() const { return toggles_; }
  /// Maximal intervals during which the switch is on, up to `horizon`.
  [[nodiscard]] std::vector<time_model::TimeInterval> on_intervals(
      time_model::TimePoint horizon) const;

 private:
  std::vector<time_model::TimePoint> toggles_;  // sorted
};

}  // namespace stem::sensing
