#pragma once

#include <memory>
#include <optional>

#include "core/instance.hpp"
#include "sensing/phenomena.hpp"
#include "sim/random.hpp"

namespace stem::sensing {

/// A sensor (paper Sec. 3): measures one physical phenomenon and converts
/// it to information carrying attributes, a sampling timestamp, and a
/// spacestamp. A sensor is *not* an observer (Def. 4.3) — it cannot
/// evaluate conditions; the mote hosting it is.
class Sensor {
 public:
  explicit Sensor(core::SensorId id) : id_(std::move(id)) {}
  virtual ~Sensor() = default;

  [[nodiscard]] const core::SensorId& id() const { return id_; }

  /// Takes one measurement at the mote's position. Returns nullopt when
  /// the target is not observable (e.g. out of range). Noise is drawn from
  /// `rng`, which belongs to the hosting mote.
  [[nodiscard]] virtual std::optional<core::AttributeSet> sample(geom::Point mote_position,
                                                                 time_model::TimePoint t,
                                                                 sim::Rng& rng) const = 0;

 private:
  core::SensorId id_;
};

/// Reads a scalar field (temperature, smoke...) with additive Gaussian
/// noise. Attribute: "value".
class ScalarFieldSensor final : public Sensor {
 public:
  ScalarFieldSensor(core::SensorId id, std::shared_ptr<const ScalarField> field,
                    double noise_sigma)
      : Sensor(std::move(id)), field_(std::move(field)), noise_sigma_(noise_sigma) {}

  [[nodiscard]] std::optional<core::AttributeSet> sample(geom::Point mote_position,
                                                         time_model::TimePoint t,
                                                         sim::Rng& rng) const override;

 private:
  std::shared_ptr<const ScalarField> field_;
  double noise_sigma_;
};

/// Measures the distance to a moving object, as the paper's window example
/// does ("the range measurement of the user A"). Attribute: "range".
/// Out-of-range targets yield no sample.
class RangeSensor final : public Sensor {
 public:
  RangeSensor(core::SensorId id, std::shared_ptr<const MovingObject> target, double max_range,
              double noise_sigma)
      : Sensor(std::move(id)),
        target_(std::move(target)),
        max_range_(max_range),
        noise_sigma_(noise_sigma) {}

  [[nodiscard]] std::optional<core::AttributeSet> sample(geom::Point mote_position,
                                                         time_model::TimePoint t,
                                                         sim::Rng& rng) const override;

 private:
  std::shared_ptr<const MovingObject> target_;
  double max_range_;
  double noise_sigma_;
};

/// Detects presence of a moving object within a radius, with false
/// negative/positive probabilities. Attribute: "present" (bool).
class PresenceSensor final : public Sensor {
 public:
  PresenceSensor(core::SensorId id, std::shared_ptr<const MovingObject> target, double radius,
                 double false_negative = 0.0, double false_positive = 0.0)
      : Sensor(std::move(id)),
        target_(std::move(target)),
        radius_(radius),
        false_negative_(false_negative),
        false_positive_(false_positive) {}

  [[nodiscard]] std::optional<core::AttributeSet> sample(geom::Point mote_position,
                                                         time_model::TimePoint t,
                                                         sim::Rng& rng) const override;

 private:
  std::shared_ptr<const MovingObject> target_;
  double radius_;
  double false_negative_;
  double false_positive_;
};

/// Reads a two-state device. Attribute: "on" (bool).
class SwitchSensor final : public Sensor {
 public:
  SwitchSensor(core::SensorId id, std::shared_ptr<const SwitchSchedule> schedule)
      : Sensor(std::move(id)), schedule_(std::move(schedule)) {}

  [[nodiscard]] std::optional<core::AttributeSet> sample(geom::Point mote_position,
                                                         time_model::TimePoint t,
                                                         sim::Rng& rng) const override;

 private:
  std::shared_ptr<const SwitchSchedule> schedule_;
};

}  // namespace stem::sensing
