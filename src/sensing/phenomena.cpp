#include "sensing/phenomena.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stem::sensing {

double HotspotField::value(geom::Point p, time_model::TimePoint) const {
  const double d2 = geom::distance2(p, center_);
  return ambient_ + peak_ * std::exp(-d2 / (2.0 * sigma_ * sigma_));
}

SpreadingFire::SpreadingFire(geom::Point ignition_point, time_model::TimePoint ignition_time,
                             double speed_m_per_s, double ambient, double burn_level)
    : ignition_(ignition_point),
      ignition_time_(ignition_time),
      speed_(speed_m_per_s),
      ambient_(ambient),
      burn_level_(burn_level) {
  if (speed_ <= 0.0) throw std::invalid_argument("SpreadingFire: speed must be positive");
}

double SpreadingFire::radius_at(time_model::TimePoint t) const {
  if (t < ignition_time_) return 0.0;
  const double elapsed_s =
      static_cast<double>((t - ignition_time_).ticks()) / 1e6;  // ticks are microseconds
  return speed_ * elapsed_s;
}

double SpreadingFire::value(geom::Point p, time_model::TimePoint t) const {
  const double r = radius_at(t);
  if (r <= 0.0) return ambient_;
  const double d = geom::distance(p, ignition_);
  if (d <= r) return burn_level_;
  // Heat decays exponentially with distance beyond the front (10 m scale).
  return ambient_ + (burn_level_ - ambient_) * std::exp(-(d - r) / 10.0);
}

std::optional<geom::Polygon> SpreadingFire::footprint(time_model::TimePoint t,
                                                      int vertices) const {
  const double r = radius_at(t);
  if (r <= 0.0) return std::nullopt;
  return geom::Polygon::disk(ignition_, r, vertices);
}

MovingObject::MovingObject(std::string name, std::vector<geom::Point> waypoints,
                           time_model::TimePoint start, double speed_m_per_s)
    : name_(std::move(name)), waypoints_(std::move(waypoints)), start_(start),
      speed_(speed_m_per_s) {
  if (waypoints_.empty()) throw std::invalid_argument("MovingObject: needs waypoints");
  if (speed_ <= 0.0) throw std::invalid_argument("MovingObject: speed must be positive");
  cumulative_.resize(waypoints_.size(), 0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    cumulative_[i] = cumulative_[i - 1] + geom::distance(waypoints_[i - 1], waypoints_[i]);
  }
}

geom::Point MovingObject::position(time_model::TimePoint t) const {
  if (t <= start_ || waypoints_.size() == 1) return waypoints_.front();
  const double elapsed_s = static_cast<double>((t - start_).ticks()) / 1e6;
  const double traveled = speed_ * elapsed_s;
  if (traveled >= cumulative_.back()) return waypoints_.back();
  // Find the segment containing `traveled`.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), traveled);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  const geom::Point a = waypoints_[idx - 1];
  const geom::Point b = waypoints_[idx];
  const double seg_len = cumulative_[idx] - cumulative_[idx - 1];
  const double frac = seg_len > 0.0 ? (traveled - cumulative_[idx - 1]) / seg_len : 0.0;
  return a + (b - a) * frac;
}

std::optional<time_model::TimePoint> MovingObject::first_entry(const geom::Polygon& zone,
                                                               time_model::TimePoint from,
                                                               time_model::TimePoint to,
                                                               time_model::Duration step) const {
  if (step <= time_model::Duration::zero()) {
    throw std::invalid_argument("MovingObject::first_entry: step must be positive");
  }
  for (time_model::TimePoint t = from; t <= to; t += step) {
    if (zone.contains(position(t))) return t;
  }
  return std::nullopt;
}

SwitchSchedule::SwitchSchedule(std::vector<time_model::TimePoint> toggles)
    : toggles_(std::move(toggles)) {
  std::sort(toggles_.begin(), toggles_.end());
}

bool SwitchSchedule::state(time_model::TimePoint t) const {
  const auto it = std::upper_bound(toggles_.begin(), toggles_.end(), t);
  const auto flips = static_cast<std::size_t>(it - toggles_.begin());
  return flips % 2 == 1;
}

std::vector<time_model::TimeInterval> SwitchSchedule::on_intervals(
    time_model::TimePoint horizon) const {
  std::vector<time_model::TimeInterval> out;
  for (std::size_t i = 0; i < toggles_.size(); i += 2) {
    const time_model::TimePoint on = toggles_[i];
    if (on > horizon) break;
    const time_model::TimePoint off = i + 1 < toggles_.size()
                                          ? std::min(toggles_[i + 1], horizon)
                                          : horizon;
    out.emplace_back(on, off);
  }
  return out;
}

void GroundTruth::record(PhysicalEvent event) {
  by_type_[event.id].push_back(events_.size());
  events_.push_back(std::move(event));
}

std::vector<const PhysicalEvent*> GroundTruth::of_type(const core::EventTypeId& id) const {
  std::vector<const PhysicalEvent*> out;
  const auto it = by_type_.find(id);
  if (it == by_type_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t idx : it->second) out.push_back(&events_[idx]);
  return out;
}

std::size_t GroundTruth::count(const core::EventTypeId& id) const {
  const auto it = by_type_.find(id);
  return it == by_type_.end() ? 0 : it->second.size();
}

const PhysicalEvent* GroundTruth::latest_before(const core::EventTypeId& id,
                                                time_model::TimePoint t) const {
  const PhysicalEvent* best = nullptr;
  for (const PhysicalEvent* e : of_type(id)) {
    if (e->time.begin() <= t && (best == nullptr || e->time.begin() > best->time.begin())) {
      best = e;
    }
  }
  return best;
}

}  // namespace stem::sensing
