#include "sensing/sensor.hpp"

namespace stem::sensing {

std::optional<core::AttributeSet> ScalarFieldSensor::sample(geom::Point mote_position,
                                                            time_model::TimePoint t,
                                                            sim::Rng& rng) const {
  const double truth = field_->value(mote_position, t);
  core::AttributeSet attrs;
  attrs.set("value", truth + (noise_sigma_ > 0.0 ? rng.normal(0.0, noise_sigma_) : 0.0));
  return attrs;
}

std::optional<core::AttributeSet> RangeSensor::sample(geom::Point mote_position,
                                                      time_model::TimePoint t,
                                                      sim::Rng& rng) const {
  const double d = geom::distance(mote_position, target_->position(t));
  if (d > max_range_) return std::nullopt;
  core::AttributeSet attrs;
  const double measured = d + (noise_sigma_ > 0.0 ? rng.normal(0.0, noise_sigma_) : 0.0);
  attrs.set("range", std::max(0.0, measured));
  return attrs;
}

std::optional<core::AttributeSet> PresenceSensor::sample(geom::Point mote_position,
                                                         time_model::TimePoint t,
                                                         sim::Rng& rng) const {
  const bool truly_present = geom::distance(mote_position, target_->position(t)) <= radius_;
  bool reported = truly_present;
  if (truly_present && false_negative_ > 0.0 && rng.chance(false_negative_)) reported = false;
  if (!truly_present && false_positive_ > 0.0 && rng.chance(false_positive_)) reported = true;
  core::AttributeSet attrs;
  attrs.set("present", reported);
  return attrs;
}

std::optional<core::AttributeSet> SwitchSensor::sample(geom::Point, time_model::TimePoint t,
                                                       sim::Rng&) const {
  core::AttributeSet attrs;
  attrs.set("on", schedule_->state(t));
  return attrs;
}

}  // namespace stem::sensing
