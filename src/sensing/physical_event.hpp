#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/attribute.hpp"
#include "core/ids.hpp"
#include "geom/location.hpp"
#include "time/occurrence.hpp"

namespace stem::sensing {

/// A ground-truth physical event Pid {to, lo, V} (paper Eq. 5.1): a real
/// occurrence in the physical world, before any sensing. The simulation
/// records these so experiments can score detections against truth
/// (detection recall in E6, latency in E7).
struct PhysicalEvent {
  core::EventTypeId id;
  time_model::OccurrenceTime time{time_model::TimePoint::epoch()};
  geom::Location location{geom::Point{0, 0}};
  core::AttributeSet attributes;
};

/// Registry of ground-truth physical events, indexed by event type.
class GroundTruth {
 public:
  void record(PhysicalEvent event);

  [[nodiscard]] const std::vector<PhysicalEvent>& all() const { return events_; }
  [[nodiscard]] std::vector<const PhysicalEvent*> of_type(const core::EventTypeId& id) const;
  [[nodiscard]] std::size_t count(const core::EventTypeId& id) const;

  /// The ground-truth event of `id` whose occurrence time is closest to
  /// (and not after) `t`; nullptr if none.
  [[nodiscard]] const PhysicalEvent* latest_before(const core::EventTypeId& id,
                                                   time_model::TimePoint t) const;

 private:
  std::vector<PhysicalEvent> events_;
  std::unordered_map<core::EventTypeId, std::vector<std::size_t>> by_type_;
};

}  // namespace stem::sensing
