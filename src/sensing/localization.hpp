#pragma once

#include <optional>
#include <vector>

#include "geom/point.hpp"

namespace stem::sensing {

/// One range measurement: a known anchor position (the mote) and the
/// measured distance to the target.
struct RangeMeasurement {
  geom::Point anchor;
  double range = 0.0;
};

/// Result of a localization solve.
struct LocalizationResult {
  geom::Point position;
  /// Root-mean-square range residual; small values mean the ranges are
  /// geometrically consistent. Used to derive instance confidence rho.
  double rms_residual = 0.0;
};

/// Trilateration by linearized least squares.
///
/// This is how the sink node turns several motes' range measurements of
/// "user A" into a *location* — the paper's motivating example of the same
/// physical event being abstracted differently at different levels (a mote
/// sees a range; the sink sees a position). Requires >= 3 measurements
/// with non-collinear anchors; returns nullopt otherwise.
[[nodiscard]] std::optional<LocalizationResult> trilaterate(
    const std::vector<RangeMeasurement>& measurements);

}  // namespace stem::sensing
