#include "sensing/localization.hpp"

#include <cmath>

namespace stem::sensing {

std::optional<LocalizationResult> trilaterate(const std::vector<RangeMeasurement>& ms) {
  const std::size_t n = ms.size();
  if (n < 3) return std::nullopt;

  // Linearize against the last anchor: for each i < n-1,
  //   2(x_n - x_i) x + 2(y_n - y_i) y = r_i^2 - r_n^2 - |p_i|^2 + |p_n|^2.
  // Solve the (n-1) x 2 system by normal equations.
  const geom::Point pn = ms.back().anchor;
  const double rn = ms.back().range;

  double a11 = 0, a12 = 0, a22 = 0, b1 = 0, b2 = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const geom::Point pi = ms[i].anchor;
    const double ri = ms[i].range;
    const double ax = 2.0 * (pn.x - pi.x);
    const double ay = 2.0 * (pn.y - pi.y);
    const double rhs = ri * ri - rn * rn - geom::norm2(pi) + geom::norm2(pn);
    a11 += ax * ax;
    a12 += ax * ay;
    a22 += ay * ay;
    b1 += ax * rhs;
    b2 += ay * rhs;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-9) return std::nullopt;  // collinear anchors

  LocalizationResult result;
  result.position = {(b1 * a22 - b2 * a12) / det, (a11 * b2 - a12 * b1) / det};

  double ss = 0.0;
  for (const RangeMeasurement& m : ms) {
    const double resid = geom::distance(result.position, m.anchor) - m.range;
    ss += resid * resid;
  }
  result.rms_residual = std::sqrt(ss / static_cast<double>(n));
  return result;
}

}  // namespace stem::sensing
