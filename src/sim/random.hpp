#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace stem::sim {

/// Deterministic, platform-independent random number generator
/// (xoshiro256** with a splitmix64 seeder).
///
/// std::mt19937 + std::*_distribution is avoided deliberately: the
/// distributions are implementation-defined, which would break
/// reproducibility of simulation results across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_u64() % range);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (for Poisson arrivals).
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Derives an independent child stream from this one and a label, so
  /// subsystems ("radio", "noise", "mobility") never share a sequence.
  [[nodiscard]] Rng fork(std::string_view label) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the label
    for (const char c : label) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return Rng(h ^ state_[0] ^ rotl(state_[2], 13));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace stem::sim
