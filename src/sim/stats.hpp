#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <limits>
#include <vector>

namespace stem::sim {

/// Streaming summary statistics (Welford's algorithm): count, mean,
/// variance, min, max. O(1) memory; used by every benchmark harness.
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

  void merge(const Summary& other);
  void reset() { *this = Summary(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Full-sample collector with exact percentiles. Memory is proportional to
/// the sample count, which is fine at simulation scales (<=10^7 samples).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Exact p-th percentile (p in [0,100]) by nearest-rank.
  /// Returns 0 for an empty collector.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double mean() const;

  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

std::ostream& operator<<(std::ostream& os, const Summary& s);

}  // namespace stem::sim
