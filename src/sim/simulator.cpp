#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace stem::sim {

TaskId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  const TaskId id = next_id_++;
  queue_.push({when, id});
  tasks_.emplace(id, std::move(fn));
  return id;
}

TaskId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(TaskId id) { return tasks_.erase(id) > 0; }

void Simulator::run_top() {
  const Scheduled top = queue_.top();
  queue_.pop();
  auto it = tasks_.find(top.id);
  now_ = top.when;
  std::function<void()> fn = std::move(it->second);
  tasks_.erase(it);
  ++executed_;
  fn();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    if (tasks_.find(queue_.top().id) == tasks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    run_top();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    if (tasks_.find(queue_.top().id) == tasks_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    run_top();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace stem::sim
