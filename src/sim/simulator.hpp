#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "time/time_point.hpp"

namespace stem::sim {

using time_model::Duration;
using time_model::TimePoint;

/// Handle to a scheduled callback; used for cancellation.
using TaskId = std::uint64_t;

/// Deterministic discrete-event simulation kernel.
///
/// All CPS components (motes, links, sinks, CCUs) run on one Simulator:
/// the simulated clock only advances when the next scheduled callback
/// fires, and ties are broken by schedule order, so runs are exactly
/// reproducible. This is the executable substitute for the paper's
/// physical testbed (see DESIGN.md, "Substitutions").
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.
  /// Throws std::invalid_argument if `when` is in the past.
  TaskId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` after `delay` (clamped to be non-negative).
  TaskId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending task. Returns false if it already ran / was
  /// cancelled / never existed.
  bool cancel(TaskId id);

  /// Runs the next pending callback, advancing the clock. Returns false
  /// if the queue is empty.
  bool step();

  /// Runs callbacks with time <= deadline; leaves the clock at `deadline`
  /// if the queue drained early. Returns number of callbacks executed.
  std::size_t run_until(TimePoint deadline);

  /// Runs until the queue is empty. Returns number of callbacks executed.
  std::size_t run();

  /// Number of live (not yet run, not cancelled) tasks.
  [[nodiscard]] std::size_t pending() const { return tasks_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Scheduled {
    TimePoint when;
    TaskId id;
    // Ordered by (when, id): FIFO among same-time events.
    friend bool operator>(const Scheduled& a, const Scheduled& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Pops and runs one task known to be pending. Precondition: !queue_.empty().
  void run_top();

  TimePoint now_ = TimePoint::epoch();
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  std::unordered_map<TaskId, std::function<void()>> tasks_;
};

}  // namespace stem::sim
