#include "sim/stats.hpp"

#include <ostream>

namespace stem::sim {

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : samples_) acc += x;
  return acc / static_cast<double>(samples_.size());
}

std::ostream& operator<<(std::ostream& os, const Summary& s) {
  return os << "n=" << s.count() << " mean=" << s.mean() << " sd=" << s.stddev()
            << " min=" << s.min() << " max=" << s.max();
}

}  // namespace stem::sim
