#pragma once

#include <vector>

#include "core/engine.hpp"

namespace stem::baseline {

/// Degrades an entity to point-only semantics: the occurrence time becomes
/// the single point at which the event was *completed* (interval end), and
/// the occurrence location becomes the representative point (fields lose
/// their extent). This is how an RTL-style, aspatial ECA system sees the
/// world (paper Sec. 2: "since interval-based events are not supported in
/// RTL-based event model, the interval-based temporal relationships such
/// as 'During, Overlap' are not addressed").
[[nodiscard]] core::Entity degrade_to_point(const core::Entity& entity);

/// The ECA baseline of experiment E6: a detection engine whose inputs are
/// forcibly degraded to punctual, point-located entities. Definitions are
/// shared verbatim with the full model, so any recall gap is attributable
/// to the event *model*, not the rule set.
class PointOnlyEngine : public core::Observer {
 public:
  PointOnlyEngine(core::ObserverId id, core::Layer layer, geom::Point location,
                  core::EngineOptions options = {})
      : inner_(std::move(id), layer, location, options) {}

  void add_definition(core::EventDefinition def) { inner_.add_definition(std::move(def)); }

  [[nodiscard]] const core::ObserverId& id() const override { return inner_.id(); }
  [[nodiscard]] const core::EngineStats& stats() const { return inner_.stats(); }

  std::vector<core::EventInstance> observe(const core::Entity& entity,
                                           time_model::TimePoint now) override {
    return inner_.observe(degrade_to_point(entity), now);
  }

 private:
  core::DetectionEngine inner_;
};

}  // namespace stem::baseline
