#pragma once

#include <vector>

#include "core/engine.hpp"
#include "net/network.hpp"

namespace stem::baseline {

/// The centralized baseline of experiment E5: a single node that receives
/// *raw physical observations* from every mote (motes run with
/// `forward_raw = true`) and evaluates all event definitions — sensor,
/// cyber-physical, and cyber level — in one flat engine.
///
/// This is the architecture the paper's hierarchy argues against: it
/// trades mote-side processing for network load, shipping every sample to
/// the center. The benchmark compares messages, bytes, and detection
/// latency against the layered deployment.
class FlatCollector {
 public:
  struct Config {
    net::NodeId id;
    geom::Point position;
    time_model::Duration proc_delay = time_model::milliseconds(20);
    core::EngineOptions engine_options{};
  };

  FlatCollector(net::Network& network, Config config);
  FlatCollector(const FlatCollector&) = delete;
  FlatCollector& operator=(const FlatCollector&) = delete;

  /// Registers a definition; the flat engine hosts all hierarchy levels.
  void add_definition(core::EventDefinition def) { engine_.add_definition(std::move(def)); }

  [[nodiscard]] const net::NodeId& id() const { return config_.id; }
  [[nodiscard]] core::DetectionEngine& engine() { return engine_; }
  /// Every instance detected centrally, in detection order.
  [[nodiscard]] const std::vector<core::EventInstance>& detected() const { return detected_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  Config config_;
  core::DetectionEngine engine_;
  std::vector<core::EventInstance> detected_;
  std::uint64_t received_ = 0;
};

}  // namespace stem::baseline
