#include "baseline/flat.hpp"

namespace stem::baseline {

FlatCollector::FlatCollector(net::Network& network, Config config)
    : network_(network),
      config_(std::move(config)),
      engine_(config_.id, core::Layer::kCyber, config_.position, config_.engine_options) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void FlatCollector::on_message(const net::Message& msg) {
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr) return;
  ++received_;
  network_.simulator().schedule_after(config_.proc_delay, [this, e = *entity] {
    const time_model::TimePoint now = network_.simulator().now();
    // Feed the entity, then cascade: detected instances are re-fed so
    // multi-level definitions (sensor -> CP -> cyber) resolve centrally.
    std::vector<core::EventInstance> frontier = engine_.observe(e, now);
    while (!frontier.empty()) {
      std::vector<core::EventInstance> next;
      for (auto& inst : frontier) {
        detected_.push_back(inst);
        auto derived = engine_.observe(core::Entity(std::move(inst)), now);
        for (auto& d : derived) next.push_back(std::move(d));
      }
      frontier = std::move(next);
    }
  });
}

}  // namespace stem::baseline
