#include "baseline/flat.hpp"

namespace stem::baseline {

FlatCollector::FlatCollector(net::Network& network, Config config)
    : network_(network),
      config_(std::move(config)),
      engine_(config_.id, core::Layer::kCyber, config_.position, config_.engine_options) {
  network_.register_node(config_.id, [this](const net::Message& msg) { on_message(msg); });
}

void FlatCollector::on_message(const net::Message& msg) {
  const auto* entity = std::get_if<core::Entity>(&msg.payload);
  if (entity == nullptr) return;
  ++received_;
  network_.simulator().schedule_after(config_.proc_delay, [this, e = *entity] {
    const time_model::TimePoint now = network_.simulator().now();
    // Multi-level definitions (sensor -> CP -> cyber) resolve centrally:
    // the engine's cascading path re-observes derived instances itself.
    auto detected = engine_.observe_cascading(e, now);
    for (auto& inst : detected) detected_.push_back(std::move(inst));
  });
}

}  // namespace stem::baseline
