#include "baseline/point_only.hpp"

namespace stem::baseline {

core::Entity degrade_to_point(const core::Entity& entity) {
  if (entity.is_observation()) {
    core::PhysicalObservation obs = entity.observation();
    obs.location = geom::Location(obs.location.representative());
    return core::Entity(std::move(obs));
  }
  core::EventInstance inst = entity.instance();
  inst.est_time = time_model::OccurrenceTime(inst.est_time.end());
  inst.est_location = geom::Location(inst.est_location.representative());
  return core::Entity(std::move(inst));
}

}  // namespace stem::baseline
