#!/usr/bin/env python3
"""Diffs fresh Google-Benchmark JSON results against recorded baselines.

Usage:
  tools/bench_compare.py FRESH BASELINE [--tolerance PCT]
      [--tolerance-for PREFIX=PCT ...]

FRESH and BASELINE are either two BENCH_*.json files or two directories
holding them (matched by file name). For every benchmark name present in
both files, the tracked counter (items_per_second when reported, else
inverse cpu_time) is compared; the script exits nonzero when any
benchmark regresses by more than --tolerance percent (default 10).

Wall-clock benchmark families are noisier than single-threaded CPU-time
ones — the sharded-runtime families (BM_ShardScaling, and anything else
measured with UseRealTime) depend on scheduler behavior and machine
load. --tolerance-for overrides the tolerance for every benchmark whose
name starts with PREFIX (longest matching prefix wins), e.g.:

  tools/bench_compare.py fresh/ bench/baselines \
      --tolerance-for BM_ShardScaling=25

Benchmarks present on only one side are reported but never fail the
comparison, so adding or retiring benchmarks does not break the gate.
Meant for same-machine runs (tools/run_bench.sh before/after a change);
cross-machine numbers are not comparable.
"""

import argparse
import json
import os
import sys


def load_rates(path):
    """benchmark name -> (rate, unit); higher is always better. The unit
    encodes the metric kind (items/s, or inverse cpu time in a specific
    time unit) so mismatched kinds are never compared numerically."""
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if "items_per_second" in b:
            rates[name] = (float(b["items_per_second"]), "items/s")
        elif b.get("cpu_time"):
            unit = "1/cpu_time[%s]" % b.get("time_unit", "ns")
            rates[name] = (1.0 / float(b["cpu_time"]), unit)
    return rates


# Wall-clock (UseRealTime) runtime families are scheduler-sensitive, so
# they always get a wider gate even when no --tolerance-for flag names
# them. CLI overrides take precedence (they are matched first on ties).
DEFAULT_FAMILY_TOLERANCES = [
    ("BM_ShardScaling", 25.0),
    ("BM_SkewedLoad", 25.0),
    ("BM_Rebalance", 25.0),
    ("BM_CascadeDepth", 25.0),
    ("BM_CascadeTier", 25.0),
    ("BM_OrderingTier", 25.0),
    ("BM_ReliableLink", 25.0),
    # Single timed iteration per leg (registration + RSS accounting), so
    # run-to-run variance is higher than the steady-state loops.
    ("BM_RegistrationScale", 30.0),
]


def tolerance_of(name, default, overrides):
    """Tolerance for one benchmark: the longest matching --tolerance-for
    prefix wins, falling back to the global --tolerance."""
    best_len = -1
    best = default
    for prefix, pct in overrides:
        if name.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best = pct
    return best


def compare_file(fresh_path, base_path, tolerance, overrides=()):
    fresh = load_rates(fresh_path)
    base = load_rates(base_path)
    failures = []
    for name in sorted(base):
        if name not in fresh:
            print(f"  only in baseline (skipped): {name}")
            continue
        new, unit = fresh[name]
        old, old_unit = base[name]
        if unit != old_unit:
            print(f"  metric changed ({old_unit} -> {unit}); skipped: {name}")
            continue
        if old <= 0:
            continue
        allowed = tolerance_of(name, tolerance, overrides)
        delta = (new - old) / old * 100.0
        marker = ""
        if delta < -allowed:
            marker = "  <-- REGRESSION"
            failures.append((name, delta))
        print(f"  {name:<40} {old:>14.4g} -> {new:>14.4g} {unit:<10} {delta:+7.1f}%{marker}")
    for name in sorted(set(fresh) - set(base)):
        print(f"  new benchmark (no baseline): {name}")
    return failures


def matching_pairs(fresh, baseline):
    if os.path.isfile(fresh):
        return [(fresh, baseline)]
    pairs = []
    for entry in sorted(os.listdir(fresh)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        base_path = os.path.join(baseline, entry)
        if os.path.isfile(base_path):
            pairs.append((os.path.join(fresh, entry), base_path))
        else:
            print(f"no baseline for {entry}; skipped")
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fresh BENCH_*.json file or directory")
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed regression in percent (default 10)")
    parser.add_argument("--tolerance-for", action="append", default=[],
                        metavar="PREFIX=PCT",
                        help="per-family tolerance override, e.g. BM_ShardScaling=25; "
                             "applies to every benchmark whose name starts with PREFIX "
                             "(repeatable; longest matching prefix wins)")
    args = parser.parse_args()

    overrides = []
    for spec in args.tolerance_for:
        prefix, sep, pct = spec.partition("=")
        if not sep or not prefix:
            parser.error(f"--tolerance-for expects PREFIX=PCT, got {spec!r}")
        try:
            overrides.append((prefix, float(pct)))
        except ValueError:
            parser.error(f"--tolerance-for expects a numeric PCT, got {spec!r}")
    overrides += DEFAULT_FAMILY_TOLERANCES  # CLI entries win ties (matched first)

    if os.path.isfile(args.fresh) != os.path.isfile(args.baseline):
        parser.error("fresh and baseline must both be files or both be directories")

    pairs = matching_pairs(args.fresh, args.baseline)
    if not pairs:
        print("error: nothing to compare", file=sys.stderr)
        return 2

    failures = []
    for fresh_path, base_path in pairs:
        print(f"{os.path.basename(fresh_path)}:")
        failures += compare_file(fresh_path, base_path, args.tolerance, overrides)

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond tolerance:",
              file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
