/// stemc — event specification compiler / validator / pretty-printer.
///
/// Usage:
///   stemc check  <file.stem>     validate a specification (exit 0/1)
///   stemc format <file.stem>     parse and re-emit in canonical form
///   stemc dump   <file.stem>     show compiled structure per event
///   stemc -                      read from stdin (any mode)
///
/// A .stem file contains one or more `event NAME { ... }` definitions in
/// the grammar documented in src/eventlang/parser.hpp.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "eventlang/lexer.hpp"
#include "eventlang/parser.hpp"
#include "eventlang/printer.hpp"

namespace {

int usage() {
  std::cerr << "usage: stemc {check|format|dump} <file.stem | ->\n";
  return 2;
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void dump(const stem::core::EventDefinition& def) {
  std::cout << "event " << def.id.value() << "\n";
  std::cout << "  slots (" << def.slots.size() << "):";
  for (const auto& slot : def.slots) std::cout << " " << slot.name;
  std::cout << "\n  window: " << def.window.ticks() << " us\n";
  std::cout << "  condition: depth=" << def.condition.depth()
            << " leaves=" << def.condition.leaf_count() << "\n";
  std::cout << "    " << stem::eventlang::print_condition(def.condition, def) << "\n";
  std::cout << "  consumption: "
            << (def.consumption == stem::core::ConsumptionMode::kConsume ? "consume" : "reuse")
            << "\n";
  std::cout << "  synthesis: time=" << stem::time_model::to_string(def.synthesis.time)
            << " location=" << stem::geom::to_string(def.synthesis.location)
            << " attrs=" << def.synthesis.attributes.size() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string mode = argv[1];
  if (mode != "check" && mode != "format" && mode != "dump") return usage();

  try {
    const std::string source = read_all(argv[2]);
    const auto defs = stem::eventlang::parse_spec(source);
    if (mode == "check") {
      std::cerr << "OK: " << defs.size() << " event definition(s)\n";
    } else if (mode == "format") {
      for (const auto& def : defs) std::cout << stem::eventlang::print_event(def);
    } else {
      for (const auto& def : defs) dump(def);
    }
    return 0;
  } catch (const stem::eventlang::ParseError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
