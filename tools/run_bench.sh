#!/usr/bin/env bash
# Runs the Google-Benchmark microbenchmarks and records one BENCH_<name>.json
# baseline per executable. Future optimization PRs diff their numbers against
# these files (wall-clock runtime families get a wider per-family gate):
#   tools/run_bench.sh build /tmp/fresh
#   tools/bench_compare.py /tmp/fresh bench/baselines
# (fails on regression beyond the gate; the wall-clock runtime families —
# BM_ShardScaling, BM_SkewedLoad, BM_Rebalance, BM_CascadeDepth,
# BM_CascadeTier, BM_OrderingTier — carry a built-in 25% gate, overridable with
# --tolerance-for PREFIX=PCT)
#
# Usage: tools/run_bench.sh [build-dir] [out-dir]
#   build-dir  CMake build tree (default: build; configured+built if missing)
#   out-dir    where BENCH_*.json land (default: bench/baselines)
#
# A missing benchmark executable or a benchmark exiting nonzero FAILS the
# whole run (no silent partial baselines): a partial BENCH_*.json set would
# make the next regression gate quietly skip the missing families.
#
# Env:
#   STEM_BENCH_MIN_TIME  per-benchmark min running time in seconds (default 0.05)
#   STEM_BENCH_PIN       1 = pin sharded-runtime workers to distinct CPUs
#                        (default 0; pointless below one core per shard)
#
# Every BENCH_*.json carries logical_cpus + stem_bench_pin in its context
# header, so a reader (or bench_compare) can tell a single-core container
# recording from a many-core one without out-of-band notes.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/baselines}
MIN_TIME=${STEM_BENCH_MIN_TIME:-0.05}
PIN=${STEM_BENCH_PIN:-0}
LOGICAL_CPUS=$(nproc)

# The e1-e4, e9-e11 microbenchmarks use BENCHMARK_MAIN and understand
# --benchmark_format=json; e5-e8, e12, and fig* are self-driving studies
# with their own output format, so they are not part of the JSON baseline.
GBENCH_TARGETS=(
  e1_temporal_ops
  e2_spatial_ops
  e3_composite_eval
  e4_spatial_index
  e9_eventlang
  e10_pubsub
  e11_engine_throughput
  e13_reliable_link
)

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j"$(nproc)"
fi

mkdir -p "$OUT_DIR"

# Fail loudly up front if any benchmark binary is missing: a partial
# baseline set silently weakens every future bench_compare gate.
missing=()
for target in "${GBENCH_TARGETS[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$target" ]]; then
    missing+=("$target")
  fi
done
if [[ "${#missing[@]}" -gt 0 ]]; then
  echo "error: benchmark executable(s) not built: ${missing[*]}" >&2
  echo "       (is Google Benchmark installed? configure with -DSTEM_BUILD_BENCH=ON)" >&2
  exit 1
fi

for target in "${GBENCH_TARGETS[@]}"; do
  exe="$BUILD_DIR/bench/$target"
  out="$OUT_DIR/BENCH_${target}.json"
  echo "bench: $target -> $out (logical_cpus=$LOGICAL_CPUS pin=$PIN)" >&2
  status=0
  STEM_BENCH_PIN="$PIN" "$exe" --benchmark_min_time="$MIN_TIME" --benchmark_format=json \
    --benchmark_context=logical_cpus="$LOGICAL_CPUS" \
    --benchmark_context=stem_bench_pin="$PIN" >"$out" || status=$?
  if [[ "$status" -ne 0 ]]; then
    rm -f "$out"  # never leave a truncated baseline behind
    echo "error: $target exited with status $status; baseline run aborted" >&2
    exit 1
  fi
done

# e12 is a self-driving study (plain-text table, no --benchmark_format):
# record its output verbatim so the aggregation trade-off numbers have a
# baseline file too. Its internal monotonicity checks make it exit nonzero
# on nonsense results, which aborts the baseline run like the JSON ones.
e12="$BUILD_DIR/bench/e12_aggregation"
if [[ ! -x "$e12" ]]; then
  echo "error: benchmark executable not built: e12_aggregation" >&2
  exit 1
fi
echo "bench: e12_aggregation -> $OUT_DIR/BENCH_e12_aggregation.txt" >&2
status=0
"$e12" >"$OUT_DIR/BENCH_e12_aggregation.txt" || status=$?
if [[ "$status" -ne 0 ]]; then
  rm -f "$OUT_DIR/BENCH_e12_aggregation.txt"
  echo "error: e12_aggregation exited with status $status; baseline run aborted" >&2
  exit 1
fi

# Headline figures for CHANGES.md / PR summaries.
python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def rate(path, name):
    try:
        with open(os.path.join(out_dir, path)) as f:
            data = json.load(f)
    except OSError:
        return None
    for b in data.get("benchmarks", []):
        if b["name"] == name:
            return b.get("items_per_second")
    return None

def ns_per_op(path, name):
    # e2 reports plain ns/op without an items_per_second counter.
    try:
        with open(os.path.join(out_dir, path)) as f:
            data = json.load(f)
    except OSError:
        return None
    for b in data.get("benchmarks", []):
        if b["name"] == name and b.get("time_unit") == "ns":
            return b.get("cpu_time")
    return None

def fmt(v):
    return "n/a" if v is None else f"{v / 1e6:.2f}M/s"

spatial_ns = ns_per_op("BENCH_e2_spatial_ops.json", "BM_SpatialPointField/inside/64")
spatial = None if spatial_ns is None else 1e9 / spatial_ns

print("-- baseline headline figures --")
print(f"engine throughput (1 def):   {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_DefinitionCount/1'))} entities/s")
print(f"engine throughput (64 defs): {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_DefinitionCount/64'))} entities/s")

# Definition-count scaling: with the segment-node threshold index an
# arrival's dispatch cost is output-sensitive, so the 4096- and 16384-
# definition legs should hold within ~2x of the 64-definition one.
d64 = rate("BENCH_e11_engine_throughput.json", "BM_DefinitionCount/64")
for n in (4096, 16384):
    r = rate("BENCH_e11_engine_throughput.json", f"BM_DefinitionCount/{n}")
    ratio = "n/a" if not (r and d64) else f"{d64 / r:.2f}x the 64-def cost"
    print(f"engine throughput ({n} defs): {fmt(r)} entities/s ({ratio})")
print(f"temporal op (before, i-i):   {fmt(rate('BENCH_e1_temporal_ops.json', 'BM_TemporalOp/before_ii'))} ops/s")
print(f"allen classify:              {fmt(rate('BENCH_e1_temporal_ops.json', 'BM_AllenClassify'))} ops/s")
print(f"spatial point-in-field (64): {fmt(spatial)} ops/s")

# Sharded-runtime families (BM_ShardScaling/0 is the sequential reference
# engine on the same 64-definition workload; /N runs N worker shards —
# UseRealTime appends the /real_time suffix). Shard speedup is meaningful
# only with >= as many cores as shards.
seq = rate("BENCH_e11_engine_throughput.json", "BM_ShardScaling/0/real_time")
for shards in (1, 2, 4, 8):
    r = rate("BENCH_e11_engine_throughput.json", f"BM_ShardScaling/{shards}/real_time")
    speedup = "n/a" if not (r and seq) else f"{r / seq:.2f}x vs sequential"
    print(f"shard scaling ({shards} shard{'s' if shards > 1 else ''}):     {fmt(r)} entities/s ({speedup})")
print(f"batched ingest (batch=256):  {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_BatchSize/256'))} entities/s")

# Adaptive rebalancing under the Zipf-skewed mix: the interesting number
# on a single-core recorder is the load-spread counter (max/mean per-shard
# arrivals; 1.0 = even), not wall-clock — see the bench caveat in docs.
def counter(path, name, key):
    try:
        with open(os.path.join(out_dir, path)) as f:
            data = json.load(f)
    except OSError:
        return None
    for b in data.get("benchmarks", []):
        if b["name"] == name:
            return b.get(key)
    return None

# Registration-path scaling (one timed iteration per leg; the name
# carries the /iterations:1 suffix): a million near-duplicate threshold
# definitions must register in seconds, with resident memory beside it.
for n in (16384, 131072, 1048576):
    name = f"BM_RegistrationScale/{n}/iterations:1"
    r = rate("BENCH_e11_engine_throughput.json", name)
    rss = counter("BENCH_e11_engine_throughput.json", name, "rss_mb")
    secs = "n/a" if not r else f"{n / r:.2f}s"
    rss_s = "n/a" if rss is None else f"{rss:.0f} MB"
    print(f"registration ({n:>7} defs): {fmt(r)} defs/s ({secs}, {rss_s} resident)")

for leg in ("Off", "On"):
    name = f"BM_Rebalance/{leg}/real_time"
    spread = counter("BENCH_e11_engine_throughput.json", name, "max/mean load")
    spread_s = "n/a" if spread is None else f"{spread:.2f}"
    print(f"rebalance {leg.lower():<3} (zipf skew):   {fmt(rate('BENCH_e11_engine_throughput.json', name))} entities/s, max/mean shard load {spread_s}")

# Hierarchical cascade through the 4-shard runtime: arrivals/s by depth
# cap (1 = no re-ingestion, 4 = the full 3-layer closure), plus how many
# derived instances the coordinator re-ingested across shards.
for d in (1, 2, 4):
    name = f"BM_CascadeDepth/{d}/real_time"
    re_in = counter("BENCH_e11_engine_throughput.json", name, "reingested")
    re_s = "n/a" if re_in is None else f"{re_in:.0f}"
    print(f"cascade depth {d}:             {fmt(rate('BENCH_e11_engine_throughput.json', name))} arrivals/s ({re_s} reingested)")

# Delivery-ordering tiers on the Zipf-skewed mix: what the byte-exact
# global merge costs vs per-definition order vs unordered-with-watermark.
for tier in ("global", "perdef", "unordered"):
    name = f"BM_OrderingTier/{tier}/real_time"
    print(f"ordering tier ({tier:<9}):   {fmt(rate('BENCH_e11_engine_throughput.json', name))} entities/s")

# Cascade x ordering tier at pipeline depth 4: tier-relaxed closure
# release lets perdef/unordered stream emissions while closures are in
# flight, vs the global tier's stamp-ordered whole-closure merge.
for tier in ("global", "perdef", "unordered"):
    for pipe in (1, 4):
        name = f"BM_CascadeTier/{tier}/{pipe}/real_time"
        print(f"cascade tier {tier:<9} K={pipe}:  {fmt(rate('BENCH_e11_engine_throughput.json', name))} arrivals/s")

# The per-arrival entity-copy lever: reference deep-copy observe vs the
# prestored shared-storage path the sharded runtime workers use.
ref = rate("BENCH_e11_engine_throughput.json", "BM_SharedArrival/0")
pre = rate("BENCH_e11_engine_throughput.json", "BM_SharedArrival/1")
win = "n/a" if not (ref and pre) else f"{(pre / ref - 1) * 100:+.1f}%"
print(f"shared-arrival (64 buffered): {fmt(ref)} -> {fmt(pre)} entities/s ({win} vs deep copy)")

# Reliable sessions (PR 7): exactly-once delivery rate as link loss climbs,
# with the retransmission cost beside it; the plain leg is the
# fire-and-forget reference on the identical link.
for loss in (0, 5, 20):
    name = f"BM_ReliableLink/{loss}"
    rtx = counter("BENCH_e13_reliable_link.json", name, "retransmits_per_send")
    rtx_s = "n/a" if rtx is None else f"{rtx:.3f}"
    print(f"reliable link ({loss:>2}% loss):    {fmt(rate('BENCH_e13_reliable_link.json', name))} entities/s ({rtx_s} retransmits/send)")
print(f"plain link (reference):      {fmt(rate('BENCH_e13_reliable_link.json', 'BM_ReliableLink_PlainBaseline'))} entities/s")
EOF
