#!/usr/bin/env bash
# Runs the Google-Benchmark microbenchmarks and records one BENCH_<name>.json
# baseline per executable. Future optimization PRs diff their numbers against
# these files:
#   tools/run_bench.sh build /tmp/fresh
#   tools/bench_compare.py /tmp/fresh bench/baselines   # fails on >10% regression
#
# Usage: tools/run_bench.sh [build-dir] [out-dir]
#   build-dir  CMake build tree (default: build; configured+built if missing)
#   out-dir    where BENCH_*.json land (default: bench/baselines)
#
# Env:
#   STEM_BENCH_MIN_TIME  per-benchmark min running time in seconds (default 0.05)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench/baselines}
MIN_TIME=${STEM_BENCH_MIN_TIME:-0.05}

# The e1-e4, e9-e11 microbenchmarks use BENCHMARK_MAIN and understand
# --benchmark_format=json; e5-e8, e12, and fig* are self-driving studies
# with their own output format, so they are not part of the JSON baseline.
GBENCH_TARGETS=(
  e1_temporal_ops
  e2_spatial_ops
  e3_composite_eval
  e4_spatial_index
  e9_eventlang
  e10_pubsub
  e11_engine_throughput
)

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j"$(nproc)"
fi

mkdir -p "$OUT_DIR"

ran=0
for target in "${GBENCH_TARGETS[@]}"; do
  exe="$BUILD_DIR/bench/$target"
  if [[ ! -x "$exe" ]]; then
    echo "skip: $target (not built; is Google Benchmark installed?)" >&2
    continue
  fi
  out="$OUT_DIR/BENCH_${target}.json"
  echo "bench: $target -> $out" >&2
  "$exe" --benchmark_min_time="$MIN_TIME" --benchmark_format=json >"$out"
  ran=$((ran + 1))
done

if [[ "$ran" -eq 0 ]]; then
  echo "error: no benchmark executables found under $BUILD_DIR/bench -- nothing was measured" >&2
  exit 1
fi

# Headline figures for CHANGES.md / PR summaries.
python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def rate(path, name):
    try:
        with open(os.path.join(out_dir, path)) as f:
            data = json.load(f)
    except OSError:
        return None
    for b in data.get("benchmarks", []):
        if b["name"] == name:
            return b.get("items_per_second")
    return None

def ns_per_op(path, name):
    # e2 reports plain ns/op without an items_per_second counter.
    try:
        with open(os.path.join(out_dir, path)) as f:
            data = json.load(f)
    except OSError:
        return None
    for b in data.get("benchmarks", []):
        if b["name"] == name and b.get("time_unit") == "ns":
            return b.get("cpu_time")
    return None

def fmt(v):
    return "n/a" if v is None else f"{v / 1e6:.2f}M/s"

spatial_ns = ns_per_op("BENCH_e2_spatial_ops.json", "BM_SpatialPointField/inside/64")
spatial = None if spatial_ns is None else 1e9 / spatial_ns

print("-- baseline headline figures --")
print(f"engine throughput (1 def):   {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_DefinitionCount/1'))} entities/s")
print(f"engine throughput (64 defs): {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_DefinitionCount/64'))} entities/s")
print(f"temporal op (before, i-i):   {fmt(rate('BENCH_e1_temporal_ops.json', 'BM_TemporalOp/before_ii'))} ops/s")
print(f"allen classify:              {fmt(rate('BENCH_e1_temporal_ops.json', 'BM_AllenClassify'))} ops/s")
print(f"spatial point-in-field (64): {fmt(spatial)} ops/s")

# Sharded-runtime families (BM_ShardScaling/0 is the sequential reference
# engine on the same 64-definition workload; /N runs N worker shards —
# UseRealTime appends the /real_time suffix). Shard speedup is meaningful
# only with >= as many cores as shards.
seq = rate("BENCH_e11_engine_throughput.json", "BM_ShardScaling/0/real_time")
for shards in (1, 2, 4, 8):
    r = rate("BENCH_e11_engine_throughput.json", f"BM_ShardScaling/{shards}/real_time")
    speedup = "n/a" if not (r and seq) else f"{r / seq:.2f}x vs sequential"
    print(f"shard scaling ({shards} shard{'s' if shards > 1 else ''}):     {fmt(r)} entities/s ({speedup})")
print(f"batched ingest (batch=256):  {fmt(rate('BENCH_e11_engine_throughput.json', 'BM_BatchSize/256'))} entities/s")
EOF
