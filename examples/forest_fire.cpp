/// Forest fire: field-event detection. A fire spreads radially; motes
/// raise HOT sensor events; the sink composes three nearby HOT events into
/// a CP_FIRE *field event* whose footprint is the convex hull of the
/// contributing motes; the CCU raises FIRE_ALARM and triggers suppression.

#include <iomanip>
#include <iostream>

#include "scenario/forest_fire.hpp"

namespace {
std::string show(std::optional<stem::time_model::TimePoint> t) {
  if (!t.has_value()) return "never";
  return std::to_string(static_cast<double>(t->ticks()) / 1e6) + " s";
}
}  // namespace

int main() {
  using namespace stem;

  scenario::ForestFireConfig cfg;
  cfg.deployment.topology.motes = 36;
  cfg.deployment.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.deployment.topology.radio_range = 40.0;
  cfg.deployment.sampling_period = time_model::milliseconds(500);

  std::cout << "Forest fire: ignition at (" << cfg.ignition.x << "," << cfg.ignition.y
            << ") after " << static_cast<double>(cfg.ignition_after.ticks()) / 1e6
            << " s, spreading at " << cfg.spread_speed << " m/s; "
            << cfg.deployment.topology.motes << " heat-sensing motes\n\n";

  scenario::ForestFire scenario(cfg);
  const auto result = scenario.run();

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "ground truth  ignition at "
            << static_cast<double>(result.ignition_time.ticks()) / 1e6 << " s\n";
  std::cout << "motes         " << result.hot_events << " HOT sensor events\n";
  std::cout << "sink          first CP_FIRE field event at " << show(result.first_cp_fire)
            << " (" << result.cp_fire_events << " total)\n";
  if (const auto ratio = result.footprint_ratio) {
    std::cout << "sink          estimated footprint / true burning area = " << *ratio << "\n";
  }
  std::cout << "ccu           " << result.alarms << " FIRE_ALARM cyber events, first at "
            << show(result.first_alarm) << "\n";
  std::cout << "actor         suppression at " << show(result.suppression) << "\n";
  if (const auto latency = result.detection_latency_ms()) {
    std::cout << "EDL           " << *latency << " ms (ignition -> CP_FIRE)\n";
  }
  std::cout << "network       " << result.network.sent << " msgs, "
            << result.network.bytes_sent << " bytes\n";

  const bool ok = result.first_cp_fire.has_value() && result.suppression.has_value();
  std::cout << (ok ? "\nOK: fire detected and suppressed\n" : "\nFAILED\n");
  return ok ? 0 : 1;
}
