/// Postmortem analysis: the database-server side of the architecture.
/// Runs the forest-fire scenario, then answers "what happened?" questions
/// offline from the archived event instances: typed queries, time-range
/// and spatial queries, provenance lineage from a fire alarm back down the
/// hierarchy, retention pruning, and JSON export (the archive format).

#include <iostream>

#include "core/serialize.hpp"
#include "scenario/forest_fire.hpp"

int main() {
  using namespace stem;

  scenario::ForestFireConfig cfg;
  cfg.deployment.topology.motes = 25;
  cfg.deployment.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.deployment.topology.radio_range = 40.0;
  cfg.deployment.sampling_period = time_model::milliseconds(500);

  scenario::ForestFire scenario(cfg);
  const auto result = scenario.run();
  db::EventStore& store = scenario.deployment().database().store();

  std::cout << "archive holds " << store.size() << " instances\n\n";

  // 1. Typed query: every fire alarm the CCU raised.
  db::Query alarms;
  alarms.event = core::EventTypeId("FIRE_ALARM");
  const auto alarm_rows = store.query(alarms);
  std::cout << "FIRE_ALARM instances: " << alarm_rows.size() << "\n";

  // 2. Time-range query: what was detected in the 5 s after ignition?
  db::Query early;
  early.time_range = time_model::TimeInterval(result.ignition_time,
                                              result.ignition_time + time_model::seconds(5));
  std::cout << "instances whose occurrence intersects ignition+5s: " << store.count(early)
            << "\n";

  // 3. Spatial query: detections whose footprint touches the ignition area.
  db::Query near_ignition;
  near_ignition.region = geom::BoundingBox({cfg.ignition.x - 15, cfg.ignition.y - 15},
                                           {cfg.ignition.x + 15, cfg.ignition.y + 15});
  near_ignition.event = core::EventTypeId("CP_FIRE");
  std::cout << "CP_FIRE fields touching the ignition neighborhood: "
            << store.count(near_ignition) << "\n";

  // 4. Confidence filter: only well-supported detections.
  db::Query confident;
  confident.event = core::EventTypeId("CP_FIRE");
  confident.min_confidence = 0.8;
  std::cout << "CP_FIRE with rho >= 0.8: " << store.count(confident) << "\n\n";

  // 5. Lineage: walk the first alarm back through its provenance chain.
  if (!alarm_rows.empty()) {
    const auto chain = store.lineage(alarm_rows.front()->key);
    std::cout << "lineage of first alarm (" << chain.size() << " archived ancestors):\n";
    for (const auto* inst : chain) {
      std::cout << "  [" << core::to_string(inst->layer) << "] " << inst->key
                << " teo=" << inst->est_time << " rho=" << inst->confidence << "\n";
    }
    std::cout << "\n";
  }

  // 6. Export: the archive row as JSON, and prove it round-trips.
  if (!alarm_rows.empty()) {
    const std::string json = core::encode(*alarm_rows.front());
    std::cout << "JSON export of the first alarm:\n" << json << "\n";
    const auto back = core::decode_instance(json);
    std::cout << "round-trip " << (back.has_value() && back->key == alarm_rows.front()->key
                                       ? "OK"
                                       : "FAILED")
              << "\n\n";
  }

  // 7. Retention: drop everything before the first alarm.
  if (result.first_alarm.has_value()) {
    const std::size_t removed = store.prune_before(*result.first_alarm);
    std::cout << "retention prune removed " << removed << " instances; " << store.size()
              << " remain\n";
  }

  const bool ok = !alarm_rows.empty() && store.size() > 0;
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
