/// Quickstart: define the paper's S1 spatio-temporal composite event in
/// the event language, run a detection engine by hand, and inspect the
/// resulting event instance (Eq. 4.6/4.7).
///
///   S1: "every instance of physical observation x occurs before physical
///        observation y, and the distance between their locations is less
///        than 5 meters"            (paper Sec. 4.1)

#include <iostream>

#include "core/engine.hpp"
#include "eventlang/parser.hpp"

int main() {
  using namespace stem;

  // 1. Compile the event definition from the specification language.
  const char* spec = R"(
    event S1 {
      window: 60 s;
      slot x = obs(SRx) from MT1;
      slot y = obs(SRy) from MT2;
      when time(x) before time(y) and distance(x, y) < 5.0;
      emit { time: span; location: centroid; confidence: product; }
    }
  )";
  core::EventDefinition s1 = eventlang::parse_event(spec);
  std::cout << "Compiled S1 condition: " << s1.condition << "\n\n";

  // 2. An observer (here: a sink node at (50, 50)) hosts the definition.
  core::DetectionEngine sink(core::ObserverId("SINK1"), core::Layer::kCyberPhysical,
                             {50.0, 50.0});
  sink.add_definition(std::move(s1));

  // 3. Feed physical observations (Eq. 5.2): x from MT1 at t=1s, (0,0);
  //    y from MT2 at t=2s, (3,4) — 5m apart is NOT < 5m... use (3, 3.9).
  core::PhysicalObservation x;
  x.mote = core::ObserverId("MT1");
  x.sensor = core::SensorId("SRx");
  x.seq = 0;
  x.time = time_model::TimePoint::epoch() + time_model::seconds(1);
  x.location = geom::Location(geom::Point{0.0, 0.0});
  x.attributes.set("value", 17.0);

  core::PhysicalObservation y;
  y.mote = core::ObserverId("MT2");
  y.sensor = core::SensorId("SRy");
  y.seq = 0;
  y.time = time_model::TimePoint::epoch() + time_model::seconds(2);
  y.location = geom::Location(geom::Point{3.0, 3.9});
  y.attributes.set("value", 21.0);

  auto first = sink.observe(core::Entity(x), x.time);
  std::cout << "after x: " << first.size() << " instance(s)\n";

  auto second = sink.observe(core::Entity(y), y.time);
  std::cout << "after y: " << second.size() << " instance(s)\n\n";

  // 4. Inspect the detected instance.
  for (const core::EventInstance& inst : second) {
    std::cout << "detected: " << inst << "\n";
    std::cout << "  punctual? " << (inst.is_punctual() ? "yes" : "no (interval event)")
              << "\n";
    std::cout << "  point event? " << (inst.is_point_event() ? "yes" : "no (field event)")
              << "\n";
    std::cout << "  provenance:";
    for (const auto& p : inst.provenance) std::cout << " " << p;
    std::cout << "\n";
  }
  return second.empty() ? 1 : 0;
}
