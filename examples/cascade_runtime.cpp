/// Hierarchical cascade through the sharded runtime: the 3-layer
/// hotspot_cascade.stem spec (HOTSPOT -> FIRE_FRONT -> REGIONAL_ALARM) is
/// hosted whole by a ShardedEngineRuntime with RuntimeOptions::cascade —
/// derived instances are routed between shards as feedback items and the
/// merged stream is exactly what a sequential cascading engine would
/// emit. A heat wave sweeps two mote clusters; watch each layer light up.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eventlang/parser.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

namespace {

std::string load_spec(const char* name) {
  for (const char* prefix :
       {"examples/specs/", "../examples/specs/", "../../examples/specs/"}) {
    std::ifstream in(std::string(prefix) + name);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      return ss.str();
    }
  }
  std::cerr << "cannot open examples/specs/" << name << " (run from the repo root)\n";
  std::exit(1);
}

}  // namespace

int main() {
  using namespace stem;
  using time_model::seconds;
  using time_model::TimePoint;

  core::EngineOptions engine_options;
  engine_options.max_cascade_depth = 4;
  runtime::RuntimeOptions options;
  options.shards = 4;
  options.cascade = true;
  options.engine = engine_options;
  runtime::ShardedEngineRuntime rt(core::ObserverId("REGION"), core::Layer::kCyber, {0, 0},
                                   options);

  const auto defs = eventlang::parse_spec(load_spec("hotspot_cascade.stem"));
  for (const auto& def : defs) rt.add_definition(def);
  std::cout << "hotspot_cascade.stem: " << defs.size() << " definitions over "
            << rt.shard_count() << " shards, cascade depth cap "
            << engine_options.max_cascade_depth << "\n\n";

  // Two clusters of four motes; the heat wave crests over cluster A, then
  // cluster B. Each crest makes HOTSPOTs, pairs of them a FIRE_FRONT, and
  // a hot front the REGIONAL_ALARM — all inside the runtime.
  sim::Rng rng(23);
  std::map<std::string, std::size_t> by_type;
  TimePoint now = TimePoint::epoch();
  std::vector<core::Entity> batch;
  std::vector<TimePoint> nows;
  for (int tick = 0; tick < 40; ++tick) {
    now += time_model::milliseconds(250);
    batch.clear();
    nows.clear();
    for (int m = 0; m < 8; ++m) {
      const bool cluster_a = m < 4;
      const double crest = cluster_a ? 10.0 : 25.0;  // wave peak, in ticks
      const double heat = 60.0 + 30.0 / (1.0 + 0.15 * (tick - crest) * (tick - crest));
      core::PhysicalObservation obs;
      obs.mote = core::ObserverId("MT" + std::to_string(m));
      obs.sensor = core::SensorId("SRheat");
      obs.seq = static_cast<std::uint64_t>(tick * 8 + m);
      obs.time = now;
      obs.location = geom::Location(geom::Point{cluster_a ? 10.0 + 3.0 * m : 60.0 + 3.0 * m,
                                                rng.uniform(0, 10)});
      obs.attributes.set("value", heat + rng.uniform(-2, 2));
      batch.push_back(core::Entity(std::move(obs)));
      nows.push_back(now);
    }
    rt.ingest_batch(batch, nows);
    for (const core::EventInstance& inst : rt.poll()) ++by_type[inst.key.event.value()];
  }
  for (const core::EventInstance& inst : rt.flush()) ++by_type[inst.key.event.value()];

  const auto stats = rt.stats();
  std::cout << "detections per layer:\n";
  for (const auto& [type, count] : by_type) {
    std::cout << "  " << type << ": " << count << "\n";
  }
  std::cout << "\ncascade closures: " << stats.cascade_reingested
            << " instances re-ingested across shards, " << stats.cascade_truncated
            << " truncated at the depth cap\n";
  std::cout << "stream: " << stats.arrivals << " arrivals -> " << stats.instances
            << " instances (deterministic merge; identical to a sequential "
               "observe_cascading run)\n";
  return 0;
}
