/// Fleet geofencing: the library as a standalone spatio-temporal CEP
/// engine, without the WSN substrate. Delivery vehicles report positions;
/// composite conditions detect (a) zone intrusions — point-inside-field
/// spatial relation, (b) dwell violations — *interval* events built from
/// punctual reports, and (c) a convoy pattern — two vehicles close in both
/// space and time. Demonstrates the condition builders (c_*) directly.

#include <iomanip>
#include <iostream>

#include "core/engine.hpp"
#include "sim/random.hpp"

using namespace stem;
using core::ConsumptionMode;
using core::EventDefinition;
using core::EventTypeId;
using core::ObserverId;
using core::SensorId;
using core::SlotFilter;
using geom::Location;
using geom::Point;
using geom::Polygon;
using time_model::minutes;
using time_model::seconds;
using time_model::TimeInterval;
using time_model::TimePoint;

namespace {

core::PhysicalObservation report(const char* vehicle, std::uint64_t seq, TimePoint t, Point p) {
  core::PhysicalObservation obs;
  obs.mote = ObserverId(vehicle);
  obs.sensor = SensorId("GPS");
  obs.seq = seq;
  obs.time = t;
  obs.location = Location(p);
  obs.attributes.set("speed", 13.5);
  return obs;
}

}  // namespace

int main() {
  const Polygon restricted = Polygon::disk({500, 500}, 80.0, 24);

  core::DetectionEngine engine(ObserverId("FLEET_CCU"), core::Layer::kCyber, {0, 0});

  // (a) Intrusion: any GPS report inside the restricted zone.
  EventDefinition intrusion{
      EventTypeId("INTRUSION"),
      {{"v", SlotFilter::observation(SensorId("GPS"))}},
      core::c_space_const(0, geom::SpatialOp::kInside, Location(restricted)),
      minutes(10),
      {},
      ConsumptionMode::kUnrestricted};
  engine.add_definition(intrusion);

  // (b) Dwell: two reports of the SAME vehicle inside the zone >= 60 s
  //     apart. The synthesized instance is an *interval event* spanning
  //     both reports (emit time: span).
  EventDefinition dwell{
      EventTypeId("DWELL"),
      {{"first", SlotFilter::instance_of(EventTypeId("INTRUSION"))},
       {"second", SlotFilter::instance_of(EventTypeId("INTRUSION"))}},
      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1, seconds(60)),
                   core::c_distance(0, 1, core::RelationalOp::kLt, 200.0)}),
      minutes(10),
      {},
      ConsumptionMode::kConsume};
  dwell.synthesis.time = time_model::TimeAggregate::kSpan;
  dwell.synthesis.location = geom::SpatialAggregate::kHull;
  engine.add_definition(dwell);

  // (c) Convoy: reports from two vehicles within 2 s and 30 m.
  EventDefinition convoy{
      EventTypeId("CONVOY"),
      {{"a", SlotFilter::observation(SensorId("GPS")).from(ObserverId("TRUCK1"))},
       {"b", SlotFilter::observation(SensorId("GPS")).from(ObserverId("TRUCK2"))}},
      core::c_and({core::c_time(0, time_model::TemporalOp::kBefore, 1, seconds(-2)),
                   core::c_time(1, time_model::TemporalOp::kBefore, 0, seconds(-2)),
                   core::c_distance(0, 1, core::RelationalOp::kLt, 30.0)}),
      minutes(10),
      {},
      ConsumptionMode::kConsume};
  engine.add_definition(convoy);

  // --- Drive the fleet ------------------------------------------------------
  std::size_t intrusions = 0, dwells = 0, convoys = 0;
  const auto feed = [&](const core::PhysicalObservation& obs) {
    for (const auto& inst : engine.observe(core::Entity(obs), obs.time)) {
      if (inst.key.event == EventTypeId("INTRUSION")) {
        ++intrusions;
        // Cascade: intrusion instances feed the DWELL definition.
        for (const auto& d : engine.observe(core::Entity(inst), obs.time)) {
          if (d.key.event == EventTypeId("DWELL")) {
            ++dwells;
            std::cout << "DWELL: " << d.key << " interval "
                      << d.est_time << " (length "
                      << static_cast<double>(d.est_time.length().ticks()) / 1e6 << " s)\n";
          }
        }
      } else if (inst.key.event == EventTypeId("CONVOY")) {
        ++convoys;
        std::cout << "CONVOY at t=" << static_cast<double>(obs.time.ticks()) / 1e6 << " s\n";
      }
    }
  };

  const TimePoint t0 = TimePoint::epoch();
  // TRUCK1 drives straight through the restricted zone and lingers.
  for (int k = 0; k < 30; ++k) {
    const double x = 300.0 + 15.0 * k;  // crosses the zone around x=500
    feed(report("TRUCK1", static_cast<std::uint64_t>(k), t0 + seconds(10 * k), {x, 500}));
  }
  // TRUCK2 tails TRUCK1 closely for the first minute (convoy pattern).
  for (int k = 0; k < 6; ++k) {
    const double x = 290.0 + 15.0 * k;
    feed(report("TRUCK2", static_cast<std::uint64_t>(k), t0 + seconds(10 * k) + seconds(1),
                {x, 495}));
  }

  std::cout << "\nintrusions=" << intrusions << " dwells=" << dwells << " convoys=" << convoys
            << "\n";
  std::cout << "engine: " << engine.stats().bindings_tried << " bindings tried, "
            << engine.stats().bindings_matched << " matched\n";

  const bool ok = intrusions > 0 && dwells > 0 && convoys > 0;
  std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
