/// Smart building: the paper's running example ("user A is nearby window
/// B") run end-to-end through the full CPS architecture of Fig. 1 —
/// range-sensing motes -> sink localization -> NEARBY_WINDOW cyber-
/// physical event -> USER_AT_WINDOW cyber event -> close-window actuation.

#include <iomanip>
#include <iostream>

#include "scenario/smart_building.hpp"

namespace {
std::string show(std::optional<stem::time_model::TimePoint> t) {
  if (!t.has_value()) return "never";
  return std::to_string(static_cast<double>(t->ticks()) / 1e6) + " s";
}
}  // namespace

int main() {
  using namespace stem;

  scenario::SmartBuildingConfig cfg;
  cfg.deployment.topology.motes = 25;
  cfg.deployment.topology.placement = wsn::TopologyConfig::Placement::kGrid;
  cfg.deployment.topology.radio_range = 40.0;
  cfg.deployment.sampling_period = time_model::milliseconds(500);

  std::cout << "Smart building: " << cfg.deployment.topology.motes
            << " range-sensing motes on a " << cfg.deployment.topology.width << "x"
            << cfg.deployment.topology.height << " m floor; window zone ["
            << cfg.window_lo.x << "," << cfg.window_lo.y << "]..[" << cfg.window_hi.x << ","
            << cfg.window_hi.y << "]\n";
  std::cout << "User walks (5,5) -> (80,80) -> (95,20) at " << cfg.user_speed << " m/s\n\n";

  scenario::SmartBuilding scenario(cfg);
  const auto result = scenario.run();

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "ground truth  user entered window zone at " << show(result.true_entry) << "\n";
  std::cout << "sink          " << result.location_estimates
            << " location estimates (mean error " << result.mean_location_error_m << " m)\n";
  std::cout << "sink          first NEARBY_WINDOW at " << show(result.first_detection) << " ("
            << result.nearby_detections << " total)\n";
  std::cout << "ccu           " << result.cyber_events << " USER_AT_WINDOW cyber events\n";
  std::cout << "actor         window closed at " << show(result.window_closed) << "\n";
  if (const auto edl = result.edl_ms()) {
    std::cout << "EDL           " << *edl << " ms (physical entry -> detection)\n";
  }
  std::cout << "network       " << result.network.sent << " msgs sent, "
            << result.network.bytes_sent << " bytes\n";

  const bool ok = result.first_detection.has_value() && result.window_closed.has_value();
  std::cout << (ok ? "\nOK: event-action chain completed\n"
                   : "\nFAILED: chain did not complete\n");
  return ok ? 0 : 1;
}
