/// Sharded runtime: the multi-core ingestion path. A ShardedEngineRuntime
/// partitions event definitions across worker shards (each its own
/// DetectionEngine), replicates every arrival to the shards that host a
/// possibly-matching definition, and merges the per-shard emissions back
/// into the exact stream a single sequential engine would produce.
///
/// Here: 16 per-district overheat monitors plus one city-wide auditor
/// (a wildcard definition that sees every arrival), fed through the
/// batched ingest API and drained in stream order.

#include <iostream>
#include <vector>

#include "runtime/sharded_runtime.hpp"
#include "sim/random.hpp"

int main() {
  using namespace stem;
  using time_model::seconds;
  using time_model::TimePoint;

  runtime::RuntimeOptions options;
  options.shards = 4;
  runtime::ShardedEngineRuntime city(core::ObserverId("CITY"), core::Layer::kCyberPhysical,
                                     {0.0, 0.0}, options);

  // 16 district monitors: HOT_<d> fires when district d's heat sensor
  // exceeds 75. Distinct sensors => the runtime spreads them over shards
  // and routes each arrival only to the shard that cares.
  for (int d = 0; d < 16; ++d) {
    const std::string district = std::to_string(d);
    city.add_definition(core::EventDefinition{
        core::EventTypeId("HOT_" + district),
        {{"x", core::SlotFilter::observation(core::SensorId("heat" + district))}},
        core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 75.0),
        seconds(60),
        {},
        core::ConsumptionMode::kConsume});
  }
  // City-wide auditor: a wildcard slot matches every entity, so its host
  // shard receives the full stream (replicated ingest).
  city.add_definition(core::EventDefinition{
      core::EventTypeId("EXTREME"),
      {{"any", core::SlotFilter::any()}},
      core::c_attr(core::ValueAggregate::kAverage, "value", {0}, core::RelationalOp::kGt, 95.0),
      seconds(60),
      {},
      core::ConsumptionMode::kConsume});

  std::cout << "definitions placed on " << city.shard_count() << " shards:";
  for (std::size_t d = 0; d < city.definition_count(); ++d) std::cout << " " << city.shard_of(d);
  std::cout << "\n";

  // Feed 4096 readings in batches of 256 (one copy per arrival, shared by
  // all recipient shards), polling between batches to keep merge buffers
  // short.
  sim::Rng rng(7);
  std::size_t detected = 0;
  std::vector<core::Entity> batch;
  std::vector<TimePoint> nows;
  for (int tick = 0; tick < 16; ++tick) {
    batch.clear();
    nows.clear();
    for (int i = 0; i < 256; ++i) {
      const int d = static_cast<int>(rng.uniform_int(0, 15));
      core::PhysicalObservation obs;
      obs.mote = core::ObserverId("MT" + std::to_string(d));
      obs.sensor = core::SensorId("heat" + std::to_string(d));
      obs.seq = static_cast<std::uint64_t>(tick * 256 + i);
      obs.time = TimePoint::epoch() + seconds(tick);
      obs.location = geom::Location(geom::Point{rng.uniform(0, 100), rng.uniform(0, 100)});
      obs.attributes.set("value", rng.uniform(0, 100));
      batch.push_back(core::Entity(std::move(obs)));
      nows.push_back(batch.back().occurrence_time().end());
    }
    city.ingest_batch(batch, nows);
    detected += city.poll().size();
  }
  detected += city.flush().size();

  const runtime::RuntimeStats stats = city.stats();
  std::cout << "ingested " << stats.arrivals << " arrivals (" << stats.deliveries
            << " shard deliveries, " << stats.replicated << " replicated)\n";
  std::cout << "merged " << detected << " instances in stream order\n";

  if (detected == 0 || detected != stats.instances) {
    std::cout << "FAIL: merge mismatch\n";
    return 1;
  }
  std::cout << "OK: sharded runtime detected " << detected << " events\n";
  return 0;
}
